"""Tests for the figure-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_prints_all_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_defaults_to_list(capsys):
    assert main([]) == 0
    assert "available figures" in capsys.readouterr().out


def test_parser_accepts_duration_override():
    args = build_parser().parse_args(["fig4", "--duration", "0.005"])
    assert args.duration == 0.005
    assert args.command == "fig4"


def test_tables_command_runs(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 4" in out


def test_overhead_command_runs(capsys):
    assert main(["overhead"]) == 0
    assert "1.25" in capsys.readouterr().out  # the saturation plateau


def test_fig4_command_tiny_run(capsys):
    assert main(["fig4", "--duration", "0.004", "--degrees", "2",
                 "--schemes", "ufab"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "ufab" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


def test_every_figure_command_accepts_jobs():
    parser = build_parser()
    for name in COMMANDS:
        args = parser.parse_args([name, "--jobs", "3", "--no-cache"])
        assert args.jobs == 3 and args.no_cache


def test_fig4_parallel_matches_serial(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    argv = ["fig4", "--duration", "0.004", "--degrees", "2",
            "--schemes", "ufab", "--no-cache"]
    assert main(argv + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_bench_command_writes_report(capsys, tmp_path):
    out = tmp_path / "BENCH_smoke.json"
    assert main(["bench", "--grid", "smoke", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "bench smoke" in printed and "report written" in printed
    assert out.exists()


def test_bench_rejects_unknown_grid():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--grid", "not-a-grid"])


# ----------------------------------------------------------------------
# Shared option parents: faults + observability on every grid command
# ----------------------------------------------------------------------

def test_every_grid_command_accepts_shared_options():
    parser = build_parser()
    for name, spec in COMMANDS.items():
        if not spec.get("grid"):
            continue
        args = parser.parse_args([
            name, "--jobs", "2", "--no-cache", "--cache-dir", "/tmp/c",
            "--trace", "t.jsonl", "--metrics", "m.json",
            "--faults", "probe_loss:0.1",
        ])
        assert args.jobs == 2 and args.no_cache
        assert args.cache_dir == "/tmp/c"
        assert args.trace == "t.jsonl" and args.metrics == "m.json"
        assert args.faults == "probe_loss:0.1"


def test_faults_command_prints_grammar(capsys):
    assert main(["faults"]) == 0
    out = capsys.readouterr().out
    assert "probe_loss" in out and "semicolon-separated" in out


def test_faults_command_validates_spec(capsys):
    assert main(["faults", "--spec",
                 "probe_loss:0.2@1ms-5ms; core_reset:Core1@2ms"]) == 0
    out = capsys.readouterr().out
    assert "ok: 2 events" in out
    assert "probe_loss" in out and "core_reset" in out


def test_faults_command_rejects_bad_spec(capsys):
    assert main(["faults", "--spec", "probe_loss:banana"]) == 2
    assert "probe_loss" in capsys.readouterr().err


def test_grid_command_rejects_bad_faults_spec(capsys):
    assert main(["fig4", "--duration", "0.004", "--faults", "nope:1"]) == 2
    assert "nope" in capsys.readouterr().err


def test_fig4_with_faults_tiny_run(capsys):
    assert main(["fig4", "--duration", "0.004", "--degrees", "2",
                 "--schemes", "ufab", "--no-cache",
                 "--faults", "probe_loss:0.3"]) == 0
    assert "Figure 4" in capsys.readouterr().out


def test_resilience_command_tiny_run(capsys):
    assert main(["resilience", "--duration", "0.006", "--schemes", "ufab",
                 "--loss-rates", "0", "0.4", "--mtbfs", "--no-cache",
                 "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "ufab" in out and "loss" in out


def test_trace_accepts_faults(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "fig11", "--scheme", "ufab",
                 "--duration", "0.004", "--faults", "probe_loss:0.5"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    trace = (tmp_path / "TRACE_fig11.jsonl").read_text()
    assert "faults.probe_drop" in trace


def test_scale_command_tiny_run(capsys):
    assert main(["scale", "--k", "4", "--churn", "low", "--schemes", "ufab",
                 "--duration", "0.004", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Cluster-scale churn sweep" in out and "ufab" in out


def test_scale_verify_solver_passes(capsys):
    assert main(["scale", "--verify-solver", "--k", "4",
                 "--churn", "low"]) == 0
    assert "MATCH" in capsys.readouterr().out


def test_bench_scale_flag_is_grid_shorthand():
    args = build_parser().parse_args(["bench", "--scale"])
    assert args.scale and args.grid == "fig11"  # grid overridden at runtime
    args = build_parser().parse_args(["bench", "--metric", "rss",
                                      "--compare", "a.json", "b.json"])
    assert args.metric == "rss"
