"""Tests for the figure-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_prints_all_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_defaults_to_list(capsys):
    assert main([]) == 0
    assert "available figures" in capsys.readouterr().out


def test_parser_accepts_duration_override():
    args = build_parser().parse_args(["fig4", "--duration", "0.005"])
    assert args.duration == 0.005
    assert args.command == "fig4"


def test_tables_command_runs(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 4" in out


def test_overhead_command_runs(capsys):
    assert main(["overhead"]) == 0
    assert "1.25" in capsys.readouterr().out  # the saturation plateau


def test_fig4_command_tiny_run(capsys):
    assert main(["fig4", "--duration", "0.004", "--degrees", "2",
                 "--schemes", "ufab"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "ufab" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


def test_every_figure_command_accepts_jobs():
    parser = build_parser()
    for name in COMMANDS:
        args = parser.parse_args([name, "--jobs", "3", "--no-cache"])
        assert args.jobs == 3 and args.no_cache


def test_fig4_parallel_matches_serial(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    argv = ["fig4", "--duration", "0.004", "--degrees", "2",
            "--schemes", "ufab", "--no-cache"]
    assert main(argv + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_bench_command_writes_report(capsys, tmp_path):
    out = tmp_path / "BENCH_smoke.json"
    assert main(["bench", "--grid", "smoke", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "bench smoke" in printed and "report written" in printed
    assert out.exists()


def test_bench_rejects_unknown_grid():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "--grid", "not-a-grid"])
