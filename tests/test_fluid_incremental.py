"""Property test: incremental solves match from-scratch full solves.

The incremental ``FluidSolver`` tracks dirty flows and re-runs the fixed
point only on the affected connected component.  These tests drive long
randomized sequences of rate updates, joins/leaves, path migrations, and
link failures against one persistent solver, and after every mutation
rebuild a *fresh* solver from the surviving flows and compare delivered
rates and link inflows.  Any stale state the dirty tracking fails to
refresh shows up as a divergence here.

``N_SEQUENCES`` randomized sequences run in CI (tier-1).
"""

import random

import pytest

from repro.sim.fluid import FluidSolver
from repro.sim.topology import dumbbell, leaf_spine, parking_lot

N_SEQUENCES = 200
OPS_PER_SEQUENCE = 12

# Delivered rates agree with a from-scratch solve to the solver's own
# convergence tolerance (1e-6 on scales, compounded over a few hops).
REL_TOL = 1e-5
ABS_TOL = 1e-3  # bits/s — noise floor for "this link carries nothing"


def _random_topology(rng: random.Random):
    kind = rng.randrange(3)
    caps = [2.5e9, 5e9, 10e9]
    if kind == 0:
        return dumbbell(n_pairs=rng.randint(2, 4),
                        edge_capacity=rng.choice(caps),
                        core_capacity=rng.choice(caps))
    if kind == 1:
        return parking_lot(n_hops=rng.randint(2, 4),
                           capacity=rng.choice(caps))
    return leaf_spine(n_leaves=rng.randint(2, 3),
                      n_spines=rng.randint(1, 2),
                      hosts_per_leaf=rng.randint(1, 2),
                      host_capacity=rng.choice(caps),
                      fabric_capacity=rng.choice(caps))


def _fresh_reference(solver: FluidSolver) -> FluidSolver:
    """A brand-new solver holding the same flows, rates, and paths."""
    ref = FluidSolver(tolerance=solver.tolerance,
                      max_iterations=solver.max_iterations)
    for flow_id, entry in solver.flows.items():
        ref.add_flow(flow_id, entry.path, entry.send_rate)
    return ref


def _assert_matches(solver: FluidSolver, topo, context: str) -> None:
    inflows = solver.solve()
    ref = _fresh_reference(solver)
    ref_inflows = ref.solve()
    for flow_id, entry in solver.flows.items():
        a = entry.delivered_rate
        b = ref.flows[flow_id].delivered_rate
        assert a == pytest.approx(b, rel=REL_TOL, abs=ABS_TOL), (
            f"{context}: delivered rate of {flow_id} diverged: "
            f"incremental={a!r} fresh={b!r}")
    ref_by_link = dict(ref_inflows)
    for link, value in inflows.items():
        expect = ref_by_link.pop(link, 0.0)
        assert value == pytest.approx(expect, rel=REL_TOL, abs=ABS_TOL), (
            f"{context}: inflow of {link.name} diverged: "
            f"incremental={value!r} fresh={expect!r}")
    for link, value in ref_by_link.items():
        assert value == pytest.approx(0.0, abs=ABS_TOL), (
            f"{context}: fresh solver sees traffic on {link.name} "
            f"unknown to the incremental one")


def _run_sequence(seq: int) -> FluidSolver:
    rng = random.Random(1_000_003 * seq + 17)
    topo = _random_topology(rng)
    hosts = topo.hosts()
    solver = FluidSolver()
    links = list(topo.links.values())
    next_id = 0

    def random_route():
        for _ in range(8):
            src, dst = rng.sample(hosts, 2)
            paths = topo.shortest_paths(src, dst)
            if paths:
                return paths
        return []

    # Seed with a few flows so every op has something to act on.
    for _ in range(rng.randint(2, 5)):
        paths = random_route()
        if paths:
            solver.add_flow(f"f{next_id}", rng.choice(paths),
                            rng.uniform(0.0, 12e9))
            next_id += 1
    _assert_matches(solver, topo, f"seq {seq} setup")

    for step in range(OPS_PER_SEQUENCE):
        op = rng.random()
        flow_ids = list(solver.flows)
        if op < 0.40 and flow_ids:
            solver.set_rate(rng.choice(flow_ids), rng.uniform(0.0, 12e9))
        elif op < 0.55:
            paths = random_route()
            if paths:
                solver.add_flow(f"f{next_id}", rng.choice(paths),
                                rng.uniform(0.0, 12e9))
                next_id += 1
        elif op < 0.65 and flow_ids:
            solver.remove_flow(rng.choice(flow_ids))
        elif op < 0.80 and flow_ids:
            flow_id = rng.choice(flow_ids)
            entry = solver.flows[flow_id]
            src, dst = entry.path[0].src, entry.path[-1].dst
            paths = topo.shortest_paths(src, dst)
            if paths:
                solver.set_path(flow_id, rng.choice(paths))
        else:
            link = rng.choice(links)
            link.failed = not link.failed
            solver.invalidate()
        _assert_matches(solver, topo, f"seq {seq} step {step}")
    return solver


@pytest.mark.parametrize("block", range(8))
def test_incremental_matches_fresh_full_solve(block):
    """200 randomized update sequences, checked after every mutation."""
    per_block = N_SEQUENCES // 8
    for seq in range(block * per_block, (block + 1) * per_block):
        _run_sequence(seq)


def test_stats_distinguish_full_and_incremental_solves():
    topo = dumbbell(n_pairs=2)
    solver = FluidSolver()
    path = topo.shortest_paths("src0", "dst0")[0]
    solver.add_flow("a", path, 4e9)
    solver.solve()
    assert solver.stats.full_solves == 1  # first solve is always full
    solver.set_rate("a", 5e9)
    solver.solve()
    assert solver.stats.incremental_solves == 1
    assert solver.stats.component_flows == 1
    solver.solve()  # nothing dirty
    assert solver.stats.skipped_resolves == 1
    solver.invalidate()
    solver.solve()
    assert solver.stats.full_solves == 2
    assert solver.stats.solves == 3
    d = solver.stats.as_dict()
    assert d["mean_component_flows"] == 1.0
    assert d["iterations"] >= 3


def test_component_solve_leaves_other_components_untouched():
    # Two pairs on disjoint dumbbells-in-one-graph (distinct hosts/links
    # of a 4-pair dumbbell share only the core link, so instead build two
    # separate parking lots via distinct hosts of one leaf-spine).
    topo = leaf_spine(n_leaves=2, n_spines=1, hosts_per_leaf=2)
    solver = FluidSolver()
    # Intra-leaf flows: h0_0 -> h0_1 and h1_0 -> h1_1 share no links.
    p0 = topo.shortest_paths("h0_0", "h0_1")[0]
    p1 = topo.shortest_paths("h1_0", "h1_1")[0]
    solver.add_flow("left", p0, 3e9)
    solver.add_flow("right", p1, 4e9)
    solver.solve()
    assert solver.stats.full_solves == 1
    solver.set_rate("left", 6e9)
    solver.solve()
    assert solver.stats.incremental_solves == 1
    assert solver.stats.component_flows == 1  # only "left" recomputed
    assert solver.delivered_rate("right") == pytest.approx(4e9)
