"""Property suite: randomized twin driving of behavioral vs vector.

The ``vector`` backend (:mod:`repro.core.veccore`) claims *exact* state
equivalence with :class:`repro.core.corenode.CoreAgent` — not just on
figure rows but on every register, table entry, Bloom counter, TX-meter
word, and fault-plane latch, after every single operation.  This suite
drives a behavioral/vector twin pair through randomized 100+-step
operation sequences (probe storms, finish probes, stamp-only scouts,
sweeps, line-card resets, telemetry freezes, inflow changes, shared and
same-instant timestamps) and asserts a full state snapshot is equal —
with exact float ``==`` — after each step.

Pairs draw from a small universe over a deliberately tiny Bloom filter
(64 counters) so re-registrations, false positives, finish-of-unknown,
and sweep-then-re-add churn all occur within a run.
"""

import random

import pytest

from repro.core.corenode import CoreAgent
from repro.core.params import UFabParams
from repro.core.probe import ProbeHeader, ProbeKind
from repro.core.veccore import VectorCoreAgent
from repro.sim.link import Link

PLANS = ("full", "delta:rel=0.1", "sketch")
N_STEPS = 160
PAIRS = [f"vm{i}->vm{j}" for i in range(6) for j in range(6) if i != j]


def _params(plan):
    # Tiny filter -> real false positives; short silence timeout ->
    # sweeps actually retire pairs at microsecond timescales.
    return UFabParams(bloom_bits=64, silence_timeout_s=3e-5,
                      telemetry_plan=plan)


def _twins(plan, seed):
    params = _params(plan)
    b_link = Link("L", "A", "B", capacity=1e9, prop_delay=1e-6)
    v_link = Link("L", "A", "B", capacity=1e9, prop_delay=1e-6)
    b = CoreAgent(b_link, params, bloom_seed=seed)
    v = VectorCoreAgent(v_link, params, bloom_seed=seed)
    return b, v


def _hops(header):
    return [(r.window_total, r.phi_total, r.tx_rate, r.queue,
             r.capacity, r.link_name) for r in header.hops]


def _snap(agent, link):
    """Full observable + internal state, in exact-compare form."""
    if isinstance(agent, VectorCoreAgent):
        table = agent.pairs_snapshot()
        li = agent._li
        tx = (agent.arena.tx_time[li], agent.arena.tx_delivered[li],
              agent.arena.tx_value[li])
    else:
        table = dict(agent._table)
        tx = (agent._tx_last_time, agent._tx_last_delivered,
              agent._tx_value)
    return {
        "phi_total": agent.phi_total,
        "window_total": agent.window_total,
        "table": table,
        "bloom": dict(agent.bloom._counters),
        "bloom_items": agent.bloom.items,
        "tx_meter": tx,
        "false_positives": agent.false_positives,
        "records_stamped": agent.records_stamped,
        "deltas_suppressed": agent.deltas_suppressed,
        "sketch_folds": agent.sketch_folds,
        "frozen": agent._frozen,
        "frozen_at": agent._frozen_at,
        "stale_age": agent._stale_age,
        "delta_last": agent._delta_last,
        "link_queue": link.queue,
        "link_delivered": link.delivered_bits,
        "link_sync": link._last_sync,
        "link_inflow": link.inflow,
    }


def _header_pair(kind, pid, phi, window):
    return (ProbeHeader(kind=kind, pair_id=pid, phi=phi, window=window),
            ProbeHeader(kind=kind, pair_id=pid, phi=phi, window=window))


@pytest.mark.parametrize("seed", (1, 2, 7))
@pytest.mark.parametrize("plan", PLANS)
def test_randomized_sequences_keep_twins_identical(plan, seed):
    rng = random.Random(seed)
    b, v = _twins(plan, seed)
    t = 0.0
    # Persistent multi-hop headers: reusing one deepens header.hops so
    # the sketch plan's bottleneck fold and delta suppression both fire.
    saved = None
    for step in range(N_STEPS):
        # Mostly advance time; sometimes repeat the instant (ties).
        if rng.random() < 0.8:
            t += rng.uniform(1e-7, 2e-5)
        op = rng.random()
        if op < 0.45:  # data probe (register + stamp)
            pid = rng.choice(PAIRS)
            phi = rng.uniform(0.1, 4.0)
            window = rng.uniform(1e3, 1e6)
            if saved is not None and rng.random() < 0.3:
                bh, vh = saved
                bh.kind = vh.kind = ProbeKind.PROBE
                bh.pair_id = vh.pair_id = pid
                bh.phi = vh.phi = phi
                bh.window = vh.window = window
            else:
                bh, vh = _header_pair(ProbeKind.PROBE, pid, phi, window)
                saved = (bh, vh)
            b.on_probe(bh, t)
            v.on_probe(vh, t)
            assert _hops(bh) == _hops(vh)
        elif op < 0.55:  # finish probe (known or unknown pair)
            pid = rng.choice(PAIRS)
            bh, vh = _header_pair(ProbeKind.FINISH, pid, 0.0, 0.0)
            b.on_probe(bh, t)
            v.on_probe(vh, t)
            assert _hops(bh) == _hops(vh)
        elif op < 0.65:  # stamp-only (scout-style: no registration)
            pid = rng.choice(PAIRS)
            bh, vh = _header_pair(ProbeKind.RESPONSE, pid, 0.0, 0.0)
            b.stamp(bh, t)
            v.stamp(vh, t)
            assert _hops(bh) == _hops(vh)
        elif op < 0.75:  # traffic change
            inflow = rng.uniform(0.0, 2e9)
            b.link.set_inflow(inflow, t)
            v.link.set_inflow(inflow, t)
        elif op < 0.82:  # inactivity sweep
            assert b.sweep(t) == v.sweep(t)
        elif op < 0.86:  # line-card reboot
            b.reset(t)
            v.reset(t)
        elif op < 0.92:  # StaleTelemetry freeze (bounded or unbounded)
            age = rng.choice((None, 5e-6, 2e-5))
            b.freeze_telemetry(t, age)
            v.freeze_telemetry(t, age)
        else:  # thaw
            b.unfreeze_telemetry(t)
            v.unfreeze_telemetry(t)
        assert _snap(b, b.link) == _snap(v, v.link), f"step {step} (t={t})"
        assert b.active_pairs() == v.active_pairs()
        assert b.telemetry_frozen == v.telemetry_frozen


@pytest.mark.parametrize("seed", (3, 11))
def test_probe_storm_matches_under_full_plan(seed):
    # Dense same-instant storms: many probes at identical timestamps
    # stress the TX meter's dt<5us hold path and register tie-handling.
    rng = random.Random(seed)
    b, v = _twins("full", seed)
    t = 0.0
    for burst in range(25):
        t += rng.uniform(1e-6, 1e-5)
        inflow = rng.uniform(0.0, 1.8e9)
        b.link.set_inflow(inflow, t)
        v.link.set_inflow(inflow, t)
        for _ in range(rng.randint(2, 8)):
            pid = rng.choice(PAIRS)
            phi = rng.uniform(0.1, 2.0)
            window = rng.uniform(1e3, 1e5)
            bh, vh = _header_pair(ProbeKind.PROBE, pid, phi, window)
            b.on_probe(bh, t)
            v.on_probe(vh, t)
            assert _hops(bh) == _hops(vh)
        assert _snap(b, b.link) == _snap(v, v.link)


def test_measured_tx_is_exactly_equal_along_a_trajectory():
    b, v = _twins("full", 5)
    rng = random.Random(5)
    t = 0.0
    for _ in range(120):
        t += rng.uniform(1e-7, 3e-5)
        if rng.random() < 0.4:
            inflow = rng.uniform(0.0, 2e9)
            b.link.set_inflow(inflow, t)
            v.link.set_inflow(inflow, t)
        assert b.measured_tx(t) == v.measured_tx(t)
