"""Tests for the tenant-churn generator and flow-group aggregation."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.runner import Job, ParallelRunner
from repro.workloads import (
    FlowGroupTable,
    TenantChurnConfig,
    TenantSchedule,
    VFArrival,
    VFDeparture,
    churn_event_from_config,
    generate_churn,
)
from repro.workloads.tenants import _place_vms

HOSTS = [f"h{i}" for i in range(32)]
SMALL = TenantChurnConfig(n_seed_tenants=4, arrival_rate_hz=3000.0,
                          mean_lifetime_s=0.005, max_vms=6)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_same_seed_same_schedule():
    a = generate_churn(HOSTS, horizon_s=0.01, seed=11, config=SMALL)
    b = generate_churn(HOSTS, horizon_s=0.01, seed=11, config=SMALL)
    assert a.to_config() == b.to_config()
    assert len(a.events) > 0


def test_different_seed_different_schedule():
    a = generate_churn(HOSTS, horizon_s=0.01, seed=11, config=SMALL)
    b = generate_churn(HOSTS, horizon_s=0.01, seed=12, config=SMALL)
    assert a.to_config() != b.to_config()


def test_schedule_identical_in_fresh_interpreter():
    """Hash-seeded RNG derivation must not depend on PYTHONHASHSEED."""
    here = generate_churn(HOSTS, horizon_s=0.01, seed=11, config=SMALL)
    code = (
        "import json\n"
        "from repro.workloads import TenantChurnConfig, generate_churn\n"
        "hosts = [f'h{i}' for i in range(32)]\n"
        "cfg = TenantChurnConfig(n_seed_tenants=4, arrival_rate_hz=3000.0,"
        " mean_lifetime_s=0.005, max_vms=6)\n"
        "s = generate_churn(hosts, horizon_s=0.01, seed=11, config=cfg)\n"
        "print(json.dumps(s.to_config(), sort_keys=True))\n"
    )
    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "random"
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert json.loads(out.stdout) == json.loads(
        json.dumps(here.to_config(), sort_keys=True))


def test_scale_cell_identical_across_spawn_workers(tmp_path):
    """The full churn cell is byte-identical run in-process vs spawned."""
    job = Job(
        experiment="scale",
        entry="repro.experiments.scale_sweep:cell",
        scheme="ufab",
        seed=5,
        params={"scheme": "ufab", "k": 4, "churn": "low",
                "duration": 0.004, "seed": 5},
    )
    serial = ParallelRunner(jobs=1).run([job, job])
    fanned = ParallelRunner(jobs=2).run([job, job])
    payloads = [r.payload for r in serial] + [r.payload for r in fanned]
    assert all(r.ok for r in serial + fanned)
    first = json.dumps(payloads[0], sort_keys=True)
    assert all(json.dumps(p, sort_keys=True) == first for p in payloads[1:])


# ----------------------------------------------------------------------
# Schedule / event plumbing
# ----------------------------------------------------------------------

def test_schedule_json_round_trip():
    schedule = generate_churn(HOSTS, horizon_s=0.01, seed=3, config=SMALL)
    clone = TenantSchedule.from_config(
        json.loads(json.dumps(schedule.to_config())))
    assert clone.to_config() == schedule.to_config()
    assert clone.seed == schedule.seed


def test_events_sorted_by_time():
    schedule = generate_churn(HOSTS, horizon_s=0.01, seed=3, config=SMALL)
    times = [e.time for e in schedule.events]
    assert times == sorted(times)


def test_departures_reference_arrivals():
    schedule = generate_churn(HOSTS, horizon_s=0.02, seed=3, config=SMALL)
    arrived = {e.tenant for e in schedule.events if isinstance(e, VFArrival)}
    departed = {e.tenant for e in schedule.events
                if isinstance(e, VFDeparture)}
    assert departed  # lifetimes short enough that some VFs leave
    assert departed <= arrived


def test_event_from_config_rejects_unknown_kind():
    with pytest.raises(ValueError):
        churn_event_from_config({"kind": "vf_resize", "time": 0.0,
                                 "tenant": "t"})


def test_arrival_validation_rejects_bad_pairs():
    with pytest.raises(ValueError):
        VFArrival(time=0.0, tenant="t", vm_hosts=("a", "b"),
                  guarantee_bps=1e9, pairs=((0, 2),)).validate()
    with pytest.raises(ValueError):
        VFArrival(time=0.0, tenant="t", vm_hosts=("a", "b"),
                  guarantee_bps=-1.0, pairs=((0, 1),)).validate()


def test_config_validation():
    with pytest.raises(ValueError):
        TenantChurnConfig(min_vms=1).validate()
    with pytest.raises(ValueError):
        TenantChurnConfig(diurnal_depth=1.5).validate()
    with pytest.raises(ValueError):
        TenantChurnConfig(host_skew=-0.1).validate()
    with pytest.raises(ValueError):
        TenantChurnConfig.from_config({"arrival_rate": 5})  # unknown field


def test_diurnal_thinning_reduces_arrivals():
    flat = dataclasses.replace(SMALL, diurnal_depth=0.0)
    # A trough-aligned window: start the sinusoid where sin < 0.
    deep = dataclasses.replace(SMALL, diurnal_depth=1.0,
                               diurnal_period_s=0.02)
    n_flat = sum(isinstance(e, VFArrival) for e in
                 generate_churn(HOSTS, 0.01, seed=9, config=flat).events)
    n_deep = sum(isinstance(e, VFArrival) for e in
                 generate_churn(HOSTS, 0.01, seed=9, config=deep).events)
    assert n_flat > 0 and n_deep > 0
    assert n_flat != n_deep  # modulation actually changes the stream


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------

def test_place_vms_distinct_hosts():
    import random
    rng = random.Random(1)
    for skew in (0.0, 1.0, 4.0):
        got = _place_vms(HOSTS, 8, rng, skew)
        assert len(got) == 8 and len(set(got)) == 8
        assert set(got) <= set(HOSTS)


def test_place_vms_skew_concentrates_popular_hosts():
    import collections
    import random
    rng = random.Random(2)
    counts = collections.Counter()
    for _ in range(300):
        counts.update(_place_vms(HOSTS, 2, rng, 2.0))
    top_two = sum(n for _, n in counts.most_common(2))
    uniform = random.Random(2)
    flat = collections.Counter()
    for _ in range(300):
        flat.update(_place_vms(HOSTS, 2, uniform, 0.0))
    flat_two = sum(n for _, n in flat.most_common(2))
    assert top_two > 2 * flat_two  # Zipf head clearly hotter than uniform


# ----------------------------------------------------------------------
# Flow-group aggregation
# ----------------------------------------------------------------------

class _RecordingFabric:
    """Minimal fabric double: records pair add/remove/set_demand calls."""

    def __init__(self):
        self.pairs = {}
        self.removed = []
        self.demands = []

    def add_pair(self, pair):
        self.pairs[pair.pair_id] = pair

    def remove_pair(self, pair_id):
        self.removed.append(pair_id)
        del self.pairs[pair_id]

    def set_demand(self, pair_id, demand_bps):
        self.demands.append((pair_id, demand_bps))
        self.pairs[pair_id].demand_bps = demand_bps


def test_flow_group_folds_same_endpoint_pairs():
    fabric = _RecordingFabric()
    table = FlowGroupTable(fabric, unit_bandwidth=1e6,
                           demand_over_guarantee=2.0)
    table.add("m1", "hA", "hB", 100.0)
    table.add("m2", "hA", "hB", 50.0)   # different weight, same endpoints
    table.add("m3", "hB", "hA", 100.0)  # reverse direction: its own group
    assert len(fabric.pairs) == 2
    (group_pair,) = [p for p in fabric.pairs.values() if p.src_host == "hA"]
    assert group_pair.phi == pytest.approx(150.0)
    assert group_pair.demand_bps == pytest.approx(150.0 * 1e6 * 2.0)

    table.remove("m1")
    assert group_pair.phi == pytest.approx(50.0)
    table.remove("m2")
    assert group_pair.pair_id in fabric.removed  # last member leaves
    assert len(fabric.pairs) == 1
    assert table.report()["flow_groups"] == 1


def test_flow_group_duplicate_member_rejected():
    table = FlowGroupTable(_RecordingFabric())
    table.add("m1", "hA", "hB", 1.0)
    with pytest.raises(ValueError):
        table.add("m1", "hA", "hB", 1.0)


def test_flow_group_phi_independent_of_join_order():
    weights = [0.1, 0.7, 1e-9, 3.0]
    totals = []
    for order in (weights, list(reversed(weights))):
        fabric = _RecordingFabric()
        table = FlowGroupTable(fabric)
        for i, w in enumerate(order):
            table.add(f"m{i}", "hA", "hB", w)
        (pair,) = fabric.pairs.values()
        totals.append(pair.phi)
    assert totals[0] == totals[1]  # fsum: exact, order-insensitive


# ----------------------------------------------------------------------
# End-to-end injection
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ["ufab", "pwc"])
def test_churn_drives_fabric_end_to_end(scheme):
    from repro.experiments.scale_sweep import run_one

    row = run_one(scheme, k=4, churn="low", duration=0.004, seed=5)
    rep = row["churn_report"]
    assert rep["arrivals"] > 0
    assert rep["pairs_added"] > 0
    assert row["active_pairs"] > 0
    assert rep["peak_members"] >= rep["peak_groups"] > 0
    assert row["delivered_total_bps"] > 0


def test_unaggregated_run_installs_raw_pairs():
    from repro.experiments.scale_sweep import run_one

    grouped = run_one("ufab", k=4, churn="low", duration=0.004, seed=5)
    raw = run_one("ufab", k=4, churn="low", duration=0.004, seed=5,
                  aggregate=False)
    assert "flow_groups" not in raw["churn_report"]
    assert raw["active_pairs"] >= grouped["active_pairs"]
    assert raw["churn_report"]["pairs_added"] == \
        grouped["churn_report"]["pairs_added"]
