"""Property test: the vectorized fixed point is bit-identical to scalar.

The numpy kernel packs each component's paths into a dense matrix and
replays the scalar kernel's float operations in the scalar kernel's
order (row-wise ``cumprod`` = the left-to-right hop walk; unbuffered
``np.add.at`` = flow-then-hop accumulation).  These tests drive long
randomized mutation sequences against two solvers fed identical inputs —
one forced to ``vector`` mode, one forced to ``scalar`` — and assert
*exact* float equality of delivered rates and link inflows after every
solve.  Any reordering of the arithmetic shows up as a bit divergence.

``N_SEQUENCES`` randomized sequences run in CI (tier-1).
"""

import random

import pytest

from repro.sim.fluid import VECTOR_MIN_FLOWS, FluidSolver
from repro.sim.topology import dumbbell, fat_tree, leaf_spine, parking_lot

N_SEQUENCES = 120
OPS_PER_SEQUENCE = 12


def _random_topology(rng: random.Random):
    kind = rng.randrange(3)
    caps = [2.5e9, 5e9, 10e9]
    if kind == 0:
        return dumbbell(n_pairs=rng.randint(2, 4),
                        edge_capacity=rng.choice(caps),
                        core_capacity=rng.choice(caps))
    if kind == 1:
        return parking_lot(n_hops=rng.randint(2, 4),
                           capacity=rng.choice(caps))
    return leaf_spine(n_leaves=rng.randint(2, 3),
                      n_spines=rng.randint(1, 2),
                      hosts_per_leaf=rng.randint(1, 2),
                      host_capacity=rng.choice(caps),
                      fabric_capacity=rng.choice(caps))


def _assert_bit_identical(vec: FluidSolver, sca: FluidSolver,
                          context: str) -> None:
    vec_inflows = vec.solve()
    sca_inflows = sca.solve()
    for flow_id, entry in sca.flows.items():
        a = vec.flows[flow_id].delivered_rate
        b = entry.delivered_rate
        assert a == b, (
            f"{context}: delivered rate of {flow_id} diverged: "
            f"vector={a!r} scalar={b!r}")
    by_name = {link.name: value for link, value in sca_inflows.items()}
    for link, value in vec_inflows.items():
        expect = by_name.get(link.name, 0.0)
        assert value == expect, (
            f"{context}: inflow of {link.name} diverged: "
            f"vector={value!r} scalar={expect!r}")


def _run_sequence(seq: int) -> None:
    rng = random.Random(7_368_787 * seq + 29)
    # Two structurally identical topologies so link.failed flips do not
    # leak between the solvers under test.
    topo_rng_state = rng.getstate()
    topo_v = _random_topology(rng)
    rng.setstate(topo_rng_state)
    topo_s = _random_topology(rng)
    hosts = topo_v.hosts()
    vec = FluidSolver(mode="vector")
    sca = FluidSolver(mode="scalar")
    links_v = list(topo_v.links.values())
    links_s = list(topo_s.links.values())
    next_id = 0

    def random_route():
        for _ in range(8):
            src, dst = rng.sample(hosts, 2)
            idx = None
            paths_v = topo_v.shortest_paths(src, dst)
            if paths_v:
                idx = rng.randrange(len(paths_v))
                return (paths_v[idx], topo_s.shortest_paths(src, dst)[idx],
                        src, dst)
        return None

    def add_random_flow():
        nonlocal next_id
        route = random_route()
        if route is None:
            return
        path_v, path_s, _, _ = route
        rate = rng.uniform(0.0, 12e9)
        vec.add_flow(f"f{next_id}", path_v, rate)
        sca.add_flow(f"f{next_id}", path_s, rate)
        next_id += 1

    for _ in range(rng.randint(2, 5)):
        add_random_flow()
    _assert_bit_identical(vec, sca, f"seq {seq} setup")

    for step in range(OPS_PER_SEQUENCE):
        op = rng.random()
        flow_ids = list(sca.flows)
        if op < 0.40 and flow_ids:
            flow_id = rng.choice(flow_ids)
            rate = rng.uniform(0.0, 12e9)
            vec.set_rate(flow_id, rate)
            sca.set_rate(flow_id, rate)
        elif op < 0.55:
            add_random_flow()
        elif op < 0.65 and flow_ids:
            flow_id = rng.choice(flow_ids)
            vec.remove_flow(flow_id)
            sca.remove_flow(flow_id)
        elif op < 0.80 and flow_ids:
            flow_id = rng.choice(flow_ids)
            entry = sca.flows[flow_id]
            src, dst = entry.path[0].src, entry.path[-1].dst
            paths_v = topo_v.shortest_paths(src, dst)
            if paths_v:
                idx = rng.randrange(len(paths_v))
                vec.set_path(flow_id, paths_v[idx])
                sca.set_path(flow_id, topo_s.shortest_paths(src, dst)[idx])
        else:
            lid = rng.randrange(len(links_v))
            links_v[lid].failed = not links_v[lid].failed
            links_s[lid].failed = links_v[lid].failed
            vec.invalidate()
            sca.invalidate()
        _assert_bit_identical(vec, sca, f"seq {seq} step {step}")


@pytest.mark.parametrize("block", range(8))
def test_vector_matches_scalar_bit_identical(block):
    """120 randomized update sequences, compared exactly after every op."""
    per_block = N_SEQUENCES // 8
    for seq in range(block * per_block, (block + 1) * per_block):
        _run_sequence(seq)


def test_auto_mode_vectorizes_large_components_only():
    topo = dumbbell(n_pairs=2, core_capacity=10e9)
    solver = FluidSolver(mode="auto")
    paths = topo.shortest_paths("src0", "dst0")
    # Small component: stays on the scalar loop.
    solver.add_flow("small", paths[0], 1e9)
    solver.solve()
    assert solver.stats.vector_solves == 0
    # Grow past the threshold: the full solve flips to the numpy kernel.
    for i in range(VECTOR_MIN_FLOWS):
        solver.add_flow(f"bulk{i}", paths[0], 1e8)
    solver.solve()
    assert solver.stats.vector_solves == 1
    assert solver.stats.as_dict()["vector_solves"] == 1


def test_mode_env_and_validation(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER", "vector")
    assert FluidSolver().mode == "vector"
    monkeypatch.setenv("REPRO_SOLVER", "scalar")
    assert FluidSolver().mode == "scalar"
    monkeypatch.delenv("REPRO_SOLVER")
    assert FluidSolver().mode == "auto"
    with pytest.raises(ValueError):
        FluidSolver(mode="simd")


def test_vector_solver_on_fat_tree_congestion():
    """An incast on a k=4 fat-tree: exact agreement incl. throttling."""
    topo_v = fat_tree(k=4)
    topo_s = fat_tree(k=4)
    hosts = topo_v.hosts()
    vec = FluidSolver(mode="vector")
    sca = FluidSolver(mode="scalar")
    dst = hosts[0]
    for i, src in enumerate(hosts[1:]):
        pv = topo_v.shortest_paths(src, dst)[0]
        ps = topo_s.shortest_paths(src, dst)[0]
        vec.add_flow(f"in{i}", pv, 8e9)
        sca.add_flow(f"in{i}", ps, 8e9)
    _assert_bit_identical(vec, sca, "fat-tree incast")
    # Delivered rates must reflect the shared bottleneck, not raw demand.
    total = sum(e.delivered_rate for e in vec.flows.values())
    assert total < 8e9 * (len(hosts) - 1)
