"""Tests for repro.faults: spec parsing, schedules, injection semantics,
determinism, and cache-key integration."""

import math

import pytest

from repro.experiments.common import build_scheme
from repro.experiments.common import testbed_network as make_testbed
from repro.faults import (
    CoreReset,
    EdgeRestart,
    FaultSchedule,
    FaultSpecError,
    LinkDown,
    LinkUp,
    ProbeLoss,
    StaleTelemetry,
    as_schedule,
    event_from_config,
    install_faults,
    parse_faults,
    random_link_failures,
)
from repro.runner import Job
from repro.sim.host import VMPair


def _pair(pid="p0", src="S1", dst="S5", tokens=2000.0):
    return VMPair(pid, vf=pid, src_host=src, dst_host=dst, phi=tokens)


def _run(scheme="ufab", faults=None, duration=0.01, tokens=2000.0):
    net = make_testbed()
    fabric = build_scheme(scheme, net, seed=1)
    pair = _pair(tokens=tokens)
    fabric.add_pair(pair)
    injector = install_faults(net, fabric, faults, horizon=duration)
    net.run(duration)
    return net, fabric, injector


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

def test_parse_all_clause_kinds():
    spec = ("probe_loss:0.1@1ms-5ms/Agg1-Core1; probe_delay:50us+20us; "
            "stale:1ms@2ms-4ms; stale:freeze@5ms-6ms; "
            "link_down:Agg1-Core1@3ms; link_up:Agg1-Core1@4ms; "
            "link_flaps:mtbf=20ms,mttr=5ms/Agg; "
            "edge_restart:S3@7ms; core_reset:Core1@8ms; seed:9")
    schedule = parse_faults(spec, horizon=0.01)
    assert schedule.seed == 9
    kinds = sorted(e.kind for e in schedule.events)
    assert kinds == sorted([
        "probe_loss", "probe_delay", "stale_telemetry", "stale_telemetry",
        "link_down", "link_up", "link_flaps", "edge_restart", "core_reset",
    ])


def test_parse_time_suffixes():
    s = parse_faults("link_down:A-B@2ms; link_up:A-B@2500us; core_reset:C@1",
                     horizon=2.0)
    times = sorted(e.time for e in s.events)
    assert times == [pytest.approx(0.002), pytest.approx(0.0025), 1.0]


def test_open_window_extends_to_horizon():
    s = parse_faults("probe_loss:0.5", horizon=0.25)
    (ev,) = s.events
    assert ev.time == 0.0 and ev.until == 0.25


@pytest.mark.parametrize("bad", [
    "nope:1",
    "probe_loss:1.5",
    "probe_loss:",
    "link_down:Agg1@1ms",  # missing -dst
    "link_flaps:mtbf=0,mttr=1ms",
    "stale:0@1ms-2ms",
    "probe_delay:0",
    "seed:x",
])
def test_bad_specs_raise(bad):
    with pytest.raises(FaultSpecError):
        parse_faults(bad, horizon=1.0)


def test_schedule_config_roundtrip():
    s = parse_faults(
        "probe_loss:0.2@1ms-8ms; link_down:Agg1-Core1@2ms; "
        "edge_restart:S2@3ms; seed:4",
        horizon=0.01,
    )
    assert FaultSchedule.from_config(s.to_config()) == s


def test_event_config_roundtrip():
    for event in (
        ProbeLoss(time=0.0, until=0.1, rate=0.3, links=("A-B",)),
        StaleTelemetry(time=0.0, until=0.1, age_s=1e-3),
        LinkDown(time=0.5, src="A", dst="B"),
        LinkUp(time=0.6, src="A", dst="B"),
        EdgeRestart(time=0.1, host="S1"),
        CoreReset(time=0.1, switch="Core1"),
    ):
        assert event_from_config(event.to_config()) == event


def test_as_schedule_coercions():
    s = parse_faults("probe_loss:0.5", horizon=0.1)
    assert as_schedule(None, 0.1) == FaultSchedule()
    assert as_schedule(s, 0.1) is s
    assert as_schedule(s.to_config(), 0.1) == s
    assert as_schedule("probe_loss:0.5", 0.1) == s


def test_random_link_failures_deterministic_and_per_link_stable():
    a = random_link_failures([("A", "B"), ("C", "D")], 0.01, 0.002, 0.1, 7)
    b = random_link_failures([("A", "B"), ("C", "D")], 0.01, 0.002, 0.1, 7)
    assert list(a) == list(b)
    # Adding a link never shifts the existing links' failure times.
    c = random_link_failures([("A", "B"), ("C", "D"), ("E", "F")],
                             0.01, 0.002, 0.1, 7)
    ab = [e for e in c if getattr(e, "src", "") == "A"]
    assert ab == [e for e in a if getattr(e, "src", "") == "A"]


# ----------------------------------------------------------------------
# Injection semantics
# ----------------------------------------------------------------------

def test_install_faults_empty_is_noop():
    net = make_testbed()
    fabric = build_scheme("ufab", net)
    assert install_faults(net, fabric, None, horizon=1.0) is None
    assert install_faults(net, fabric, {}, horizon=1.0) is None
    assert net.probe_interceptor is None


def test_probe_loss_drops_and_interceptor_is_windowed():
    net, _, injector = _run(faults="probe_loss:0.5@1ms-5ms", duration=0.01)
    report = injector.report()
    assert report["probe_drops"] > 0
    # Outside the window the hot path carries no interceptor.
    assert net.probe_interceptor is None


def test_clean_run_unperturbed_by_fault_plumbing():
    net_a, _, _ = _run(faults=None)
    net_b, _, _ = _run(faults=None)
    assert net_a.delivered_rate("p0") == net_b.delivered_rate("p0")


def test_ufab_degrades_to_guarantee_floor_under_heavy_loss():
    # 2 Gbps guarantee; even at 50% per-hop probe loss the delivered
    # rate must stay at (not below) the guarantee, without collapse.
    net, _, _ = _run(scheme="ufab", faults="probe_loss:0.5", duration=0.02)
    assert net.delivered_rate("p0") >= 2e9 * 0.95


def test_link_down_up_fails_both_directions_and_recovers():
    net, _, injector = _run(
        faults="link_down:Agg1-Core1@2ms; link_up:Agg1-Core1@6ms",
        duration=0.012,
    )
    report = injector.report()
    assert report["link_failures"] == 1 and report["link_recoveries"] == 1
    assert not net.topology.link("Agg1", "Core1").failed
    assert not net.topology.link("Core1", "Agg1").failed


def test_link_flaps_compile_deterministically():
    _, _, inj_a = _run(faults="link_flaps:mtbf=3ms,mttr=1ms/Agg; seed:3",
                       duration=0.01)
    _, _, inj_b = _run(faults="link_flaps:mtbf=3ms,mttr=1ms/Agg; seed:3",
                       duration=0.01)
    assert inj_a.report() == inj_b.report()
    assert inj_a.report()["link_failures"] > 0


def test_core_reset_wipes_registers_and_run_recovers():
    net, _, injector = _run(scheme="ufab", faults="core_reset:Core1@4ms",
                            duration=0.012)
    assert injector.report()["core_resets"] == 1
    # The pair survives the wipe and still delivers its guarantee.
    assert net.delivered_rate("p0") >= 2e9 * 0.95


def test_edge_restart_rejoins_and_recovers():
    net, fabric, injector = _run(scheme="ufab", faults="edge_restart:S1@4ms",
                                 duration=0.015)
    assert injector.report()["edge_restarts"] == 1
    assert net.delivered_rate("p0") >= 2e9 * 0.95


def test_edge_restart_on_baseline_fabric():
    net, _, injector = _run(scheme="pwc", faults="edge_restart:S1@4ms",
                            duration=0.012)
    assert injector.report()["edge_restarts"] == 1
    assert net.delivered_rate("p0") > 0


def test_stale_telemetry_freeze_window_counts():
    _, _, injector = _run(scheme="ufab", faults="stale:freeze@2ms-6ms",
                          duration=0.01)
    assert injector.report()["core_resets"] == 0
    # The stale window opened and closed without breaking the run.


def test_double_install_raises():
    net = make_testbed()
    fabric = build_scheme("ufab", net)
    injector = install_faults(net, fabric, "probe_loss:0.1", horizon=0.01)
    with pytest.raises(RuntimeError):
        injector.install()


# ----------------------------------------------------------------------
# Determinism + cache keys
# ----------------------------------------------------------------------

def test_same_seed_same_schedule_bit_identical():
    from repro.experiments.fig11_guarantee import cell

    faults = parse_faults("probe_loss:0.3; seed:2", horizon=0.02).to_config()
    a = cell("ufab", duration=0.02, seed=3, faults=faults)
    b = cell("ufab", duration=0.02, seed=3, faults=faults)
    assert a == b


def test_different_schedules_differ():
    from repro.experiments.fig11_guarantee import cell

    base = cell("ufab", duration=0.02, seed=3)
    f1 = parse_faults("probe_loss:0.3", horizon=0.02).to_config()
    faulted = cell("ufab", duration=0.02, seed=3, faults=f1)
    assert faulted["dissatisfaction_ratio"] != base["dissatisfaction_ratio"] \
        or faulted.get("fault_report") is not None


def test_job_cache_key_folds_in_faults():
    base = Job(experiment="e", entry="m:f", scheme="s", seed=1,
               params={"x": 1})
    f1 = parse_faults("probe_loss:0.3", horizon=0.02).to_config()
    f2 = parse_faults("probe_loss:0.4", horizon=0.02).to_config()
    import dataclasses
    j1 = dataclasses.replace(base, faults=f1)
    j2 = dataclasses.replace(base, faults=f2)
    assert base.config_hash() != j1.config_hash()
    assert j1.config_hash() != j2.config_hash()
    # Seed matters too: same events, different schedule seed.
    f1b = dict(f1, seed=99)
    assert dataclasses.replace(base, faults=f1b).config_hash() != j1.config_hash()


def test_empty_faults_preserves_pre_faults_cache_key():
    import dataclasses
    base = Job(experiment="e", entry="m:f", scheme="s", seed=1,
               params={"x": 1})
    assert dataclasses.replace(base, faults={}).config_hash() == base.config_hash()


def test_job_call_kwargs_carries_faults():
    f = parse_faults("probe_loss:0.3", horizon=0.02).to_config()
    job = Job(experiment="e", entry="m:f", params={"a": 1}, faults=f)
    kwargs = job.call_kwargs()
    assert kwargs["a"] == 1 and kwargs["faults"] == f
    clean = Job(experiment="e", entry="m:f", params={"a": 1})
    assert "faults" not in clean.call_kwargs()


def test_grid_faults_apply_to_cells(tmp_path):
    from repro.experiments import fig_resilience

    rows = fig_resilience.run_grid(
        schemes=("ufab",), loss_rates=(0.0, 0.4), mtbfs=(),
        duration=0.008, use_cache=False,
    )
    by_level = {r["level"]: r for r in rows}
    assert "fault_report" not in by_level[0.0]
    assert by_level[0.4]["fault_report"]["probe_drops"] > 0


def test_resilience_grid_cache_roundtrip(tmp_path):
    from repro.experiments import fig_resilience

    kwargs = dict(schemes=("ufab",), loss_rates=(0.3,), mtbfs=(),
                  duration=0.008, cache_dir=str(tmp_path))
    first = fig_resilience.run_grid(**kwargs)
    second = fig_resilience.run_grid(**kwargs)
    assert first == second


def test_grid_error_names_failing_cell():
    from repro.experiments.common import GridError, run_grid

    job = Job(experiment="boom", entry="repro.runner.cells:no_such_fn",
              scheme="s", seed=7, params={"k": "v"})
    with pytest.raises(GridError) as exc:
        run_grid([job], use_cache=False)
    msg = str(exc.value)
    assert "experiment='boom'" in msg and "scheme='s'" in msg
    assert "seed=7" in msg and "'k': 'v'" in msg


def test_schedule_horizon_must_cover_events():
    with pytest.raises(FaultSpecError):
        parse_faults("link_down:A-B@2s", horizon=1.0)


def test_infinite_horizon_allowed_for_point_events():
    s = parse_faults("link_down:A-B@2s", horizon=math.inf)
    assert len(s.events) == 1
