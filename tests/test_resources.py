"""Unit tests for the hardware resource / overhead models (Tables 3-4,
Figure 15b)."""

import pytest

from repro.resources.model import (
    FpgaResourceModel,
    TofinoResourceModel,
    probing_overhead,
    probing_overhead_bound,
    probing_overhead_curve,
)


# ----------------------------------------------------------------------
# Figure 15b: probing overhead
# ----------------------------------------------------------------------

def test_overhead_bound_is_1_28_percent():
    """L_w = 4 KB, L_p = 52 B -> 1.28% (section 4.1 / Figure 15b)."""
    assert probing_overhead_bound() * 100 == pytest.approx(1.28, abs=0.05)


def test_overhead_grows_then_saturates():
    curve = dict(probing_overhead_curve([1, 10, 100, 1000, 8192]))
    assert curve[1] < curve[10] < curve[100]
    assert curve[1000] == pytest.approx(curve[8192], rel=1e-6)
    assert curve[8192] <= 1.28 + 0.05


def test_overhead_monotone_nondecreasing():
    values = [probing_overhead(n) for n in (1, 2, 5, 20, 50, 200, 1000, 10000)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


def test_overhead_zero_pairs():
    assert probing_overhead(0) == 0.0


def test_overhead_scales_with_probe_size():
    small = probing_overhead(8192, probe_bytes=26)
    large = probing_overhead(8192, probe_bytes=104)
    assert large > small


# ----------------------------------------------------------------------
# Table 3: uFAB-E on the Alveo U200
# ----------------------------------------------------------------------

def test_fpga_reference_point_matches_table3():
    model = FpgaResourceModel()  # 8K pairs, 1K tenants
    totals = model.totals()
    assert totals["LUT"] == pytest.approx(7.6, abs=0.2)
    assert totals["Registers"] == pytest.approx(5.8, abs=0.2)
    assert totals["BRAM"] == pytest.approx(16.4, abs=0.2)
    assert totals["URAM"] == pytest.approx(9.5, abs=0.2)


def test_fpga_module_breakdown_matches_table3():
    usage = FpgaResourceModel().module_usage()
    assert usage["Packet Scheduler"]["URAM"] == pytest.approx(5.7)
    assert usage["Context Tables"]["BRAM"] == pytest.approx(4.6)
    assert usage["Vendor Modules"]["LUT"] == pytest.approx(5.5)


def test_fpga_fits_in_20_percent_budget():
    """Section 1: 'tens of thousands of VM-pairs with <20% extra
    hardware resources'."""
    assert FpgaResourceModel().fits(budget_percent=20.0)


def test_fpga_memory_grows_with_pairs():
    small = FpgaResourceModel(n_pairs=8 * 1024).totals()
    big = FpgaResourceModel(n_pairs=16 * 1024).totals()
    assert big["BRAM"] > small["BRAM"]
    assert big["LUT"] == pytest.approx(small["LUT"])  # logic is fixed


# ----------------------------------------------------------------------
# Table 4: uFAB-C on Tofino
# ----------------------------------------------------------------------

def test_tofino_20k_matches_table4():
    """The derived model (measured pipeline + calibrated underlay)
    reproduces the Table-4 20K-pair column to within 0.25% absolute."""
    usage = TofinoResourceModel(20_000).usage()
    assert usage["Match Crossbar"] == pytest.approx(8.64, abs=0.05)
    assert usage["SRAM"] == pytest.approx(17.29, abs=0.05)
    assert usage["TCAM"] == pytest.approx(6.25, abs=0.05)
    assert usage["VLIW Actions"] == pytest.approx(18.23, abs=0.05)
    assert usage["Stateful ALUs"] == pytest.approx(47.92, abs=0.05)
    assert usage["Packet Header Vector"] == pytest.approx(20.05, abs=0.05)
    assert usage["Hash Bits"] == pytest.approx(17.03, abs=0.25)


def test_tofino_usage_is_derived_from_pipeline():
    """usage() reads the built program, not transcribed constants: a
    plan that adds a register/stage moves the derived percentages."""
    full = TofinoResourceModel(20_000, plan="full")
    delta = TofinoResourceModel(20_000, plan="delta:rel=0.1")
    assert delta.pipeline_usage()["salus"] > full.pipeline_usage()["salus"]
    assert delta.usage()["Stateful ALUs"] > full.usage()["Stateful ALUs"]
    # Raw counts respect the device envelope the pipeline enforces.
    raw = full.pipeline_usage()
    assert raw["stages"] <= 12 and raw["phv_bits"] <= 4096


def test_tofino_scaling_matches_table4_trend():
    """Table 4: SRAM grows slightly (17.29 -> 17.71 -> 18.75) from
    20K to 80K pairs; everything else is flat."""
    u20 = TofinoResourceModel(20_000).usage()
    u40 = TofinoResourceModel(40_000).usage()
    u80 = TofinoResourceModel(80_000).usage()
    assert u40["SRAM"] == pytest.approx(17.71, abs=0.15)
    assert u80["SRAM"] == pytest.approx(18.75, abs=0.25)
    assert u20["TCAM"] == u40["TCAM"] == u80["TCAM"]
    assert u20["Hash Bits"] < u80["Hash Bits"] < u20["Hash Bits"] + 0.2


def test_tofino_bloom_sizing_near_20kb():
    """Section 4.2: 20 KB 2-way Bloom filter for 20K pairs at <5% FP."""
    kb = TofinoResourceModel(20_000).bloom_kilobytes(fp_target=0.05, n_hashes=2)
    assert kb == pytest.approx(20.0, rel=0.15)


def test_tofino_fits_check():
    assert TofinoResourceModel(80_000).fits()


def test_table4_numbers_are_backend_invariant(monkeypatch):
    """The derived Table-4 / plan-cost columns come off the emulated
    pipeline program, not the simulation backend: selecting the
    ``vector`` (or ``pipeline``) core backend for experiments must not
    move a single number."""
    from repro.resources.model import telemetry_plan_table

    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    reference = telemetry_plan_table()
    ref_usage = TofinoResourceModel(20_000).usage()
    for backend in ("pipeline", "vector"):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        assert telemetry_plan_table() == reference
        assert TofinoResourceModel(20_000).usage() == ref_usage
