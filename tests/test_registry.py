"""Tests for the scheme registry (repro.baselines.registry)."""

import math

import pytest

from repro.baselines import registry
from repro.baselines.fabrics import SCHEME_NAMES, make_fabric
from repro.sim.host import VMPair
from repro.sim.network import Network
from repro.sim.topology import dumbbell

ALL_SCHEMES = (
    "ufab", "ufab-prime", "pwc", "es+clove",
    "wcc+ecmp", "wcc+ecmp-polarized",
    "soze", "qshare", "utas",
)


# ----------------------------------------------------------------------
# Registry lookups
# ----------------------------------------------------------------------

def test_every_expected_scheme_is_registered():
    assert registry.scheme_names() == ALL_SCHEMES


def test_legacy_scheme_names_are_a_registry_subset():
    assert set(SCHEME_NAMES) <= set(registry.scheme_names())


def test_aliases_resolve_to_canonical_infos():
    assert registry.get("tqbind") is registry.get("qshare")
    assert registry.get("mutas") is registry.get("utas")
    assert registry.get("söze") is registry.get("soze")


def test_unknown_scheme_lists_known_names():
    with pytest.raises(ValueError, match="qshare"):
        registry.get("bogus-scheme")
    with pytest.raises(ValueError, match="unknown scheme"):
        make_fabric("bogus-scheme", Network(dumbbell(n_pairs=1)))


def test_duplicate_registration_rejected():
    info = registry.get("soze")
    clone = registry.SchemeInfo(
        name="soze", builder=info.builder, summary="dup",
        guarantee_model="weighted", telemetry="x",
        uses_probes=True, work_conserving=True, bounded_latency=False,
    )
    with pytest.raises(ValueError, match="registered twice"):
        registry.register(clone)
    # Idempotent for the *same* object (module re-import safety).
    assert registry.register(info) is info


def test_capability_flags_match_scheme_designs():
    probes = {n: registry.get(n).uses_probes for n in ALL_SCHEMES}
    assert probes["qshare"] is False
    assert probes["utas"] is False
    assert probes["soze"] is True
    assert probes["ufab"] is True
    assert registry.get("utas").work_conserving is False
    assert registry.get("qshare").work_conserving is True
    assert registry.get("utas").bounded_latency is True
    assert registry.get("ufab").bounded_latency is True


# ----------------------------------------------------------------------
# Probe accounting
# ----------------------------------------------------------------------

def test_probe_overhead_zero_for_probe_free_schemes():
    assert registry.probe_overhead_bps("qshare", 0, 0.1) == 0.0
    assert registry.probe_overhead_bps("utas", 0, 0.1) == 0.0


def test_probe_overhead_scales_with_hops_only_for_int_schemes():
    # μFAB stamps per hop, Söze folds in place: only μFAB's cost grows.
    ufab_4 = registry.probe_overhead_bps("ufab", 100, 0.1, mean_hops=4)
    ufab_8 = registry.probe_overhead_bps("ufab", 100, 0.1, mean_hops=8)
    soze_4 = registry.probe_overhead_bps("soze", 100, 0.1, mean_hops=4)
    soze_8 = registry.probe_overhead_bps("soze", 100, 0.1, mean_hops=8)
    assert ufab_8 > ufab_4
    assert soze_8 == soze_4
    assert soze_4 < ufab_4


def test_probes_sent_duck_types_all_fabric_families():
    for name in ("ufab", "pwc", "soze", "qshare", "utas"):
        net = Network(dumbbell(n_pairs=2))
        fabric = make_fabric(name, net)
        for i in range(2):
            fabric.add_pair(VMPair(f"p{i}", f"vf{i}", f"src{i}", f"dst{i}",
                                   phi=1000, demand_bps=math.inf))
        net.run(0.004)
        count = registry.probes_sent(fabric)
        if registry.get(name).uses_probes:
            assert count > 0, name
        else:
            assert count == 0, name


# ----------------------------------------------------------------------
# Round-trip: every registered scheme runs the core grids
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_round_trip_fig11_cell(scheme):
    from repro.experiments.fig11_guarantee import cell

    row = cell(scheme, duration=0.006, join_interval=0.0004, seed=3)
    assert row["scheme"] == scheme
    assert row["n_pairs"] == 12
    assert 0.0 <= row["dissatisfaction_ratio"] <= 1.0


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_round_trip_resilience_cell(scheme):
    from repro.experiments.fig_resilience import cell, flap_spec
    from repro.faults import parse_faults

    faults = parse_faults(flap_spec(0.003), horizon=0.006, seed=5).to_config()
    row = cell(scheme, axis="mtbf", level=0.003, duration=0.006, seed=5,
               faults=faults)
    assert row["scheme"] == scheme
    assert row["fault_report"]["link_failures"] > 0


def test_schemes_doc_covers_registry(tmp_path):
    from repro.obs.docs import check_schemes_doc

    assert check_schemes_doc("docs/SCHEMES.md") == []
    partial = tmp_path / "SCHEMES.md"
    partial.write_text("only `ufab` here\n", encoding="utf-8")
    problems = check_schemes_doc(str(partial))
    assert any("`soze`" in p for p in problems)
    assert any("`qshare`" in p for p in problems)
