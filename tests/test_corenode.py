"""Unit tests for uFAB-C (informative core agent, section 3.6 / 4.2)."""

import pytest

from repro.core.corenode import CoreAgent, attach_core_agents
from repro.core.params import UFabParams
from repro.core.probe import ProbeHeader, ProbeKind
from repro.sim.link import Link
from repro.sim.topology import three_tier_testbed


def make_agent(capacity=10e9):
    link = Link("sw->h", "sw", "h", capacity)
    return CoreAgent(link, UFabParams()), link


def probe(pair_id, phi, window, kind=ProbeKind.PROBE):
    return ProbeHeader(kind=kind, pair_id=pair_id, phi=phi, window=window)


def test_first_probe_registers_pair():
    agent, _ = make_agent()
    agent.on_probe(probe("a", 100, 5e3), now=0.0)
    assert agent.phi_total == 100
    assert agent.window_total == 5e3
    assert agent.active_pairs() == 1


def test_repeat_probe_updates_by_delta():
    agent, _ = make_agent()
    agent.on_probe(probe("a", 100, 5e3), now=0.0)
    agent.on_probe(probe("a", 150, 7e3), now=1e-3)
    assert agent.phi_total == pytest.approx(150)
    assert agent.window_total == pytest.approx(7e3)
    assert agent.active_pairs() == 1


def test_multiple_pairs_aggregate():
    agent, _ = make_agent()
    agent.on_probe(probe("a", 100, 1e3), 0.0)
    agent.on_probe(probe("b", 200, 2e3), 0.0)
    assert agent.phi_total == pytest.approx(300)
    assert agent.window_total == pytest.approx(3e3)


def test_finish_probe_retires_pair():
    agent, _ = make_agent()
    agent.on_probe(probe("a", 100, 1e3), 0.0)
    agent.on_probe(probe("a", 100, 1e3, kind=ProbeKind.FINISH), 1e-3)
    assert agent.phi_total == 0.0
    assert agent.window_total == 0.0
    assert agent.active_pairs() == 0
    # Bloom no longer holds the pair: it can re-register cleanly.
    agent.on_probe(probe("a", 50, 500), 2e-3)
    assert agent.phi_total == pytest.approx(50)


def test_finish_is_idempotent():
    agent, _ = make_agent()
    assert agent.on_finish("never-seen")
    agent.on_probe(probe("a", 10, 10), 0.0)
    agent.on_finish("a")
    agent.on_finish("a")
    assert agent.phi_total == 0.0


def test_probe_gets_stamped_with_link_state():
    agent, link = make_agent()
    link.set_inflow(0.0, 6e9)
    header = probe("a", 100, 1e3)
    agent.on_probe(header, 1e-3)
    assert header.n_hops == 1
    hop = header.hops[0]
    assert hop.capacity == 10e9
    assert hop.phi_total == pytest.approx(100)
    assert hop.queue == 0.0
    assert hop.link_name == "sw->h"


def test_sweep_removes_silent_pairs():
    params = UFabParams(silence_timeout_s=1.0)
    link = Link("l", "a", "b", 10e9)
    agent = CoreAgent(link, params)
    agent.on_probe(probe("quiet", 10, 10), 0.0)
    agent.on_probe(probe("chatty", 20, 20), 0.0)
    agent.on_probe(probe("chatty", 20, 20), 1.5)
    removed = agent.sweep(now=2.0)
    assert removed == 1
    assert agent.phi_total == pytest.approx(20)


def test_false_positive_omits_contribution():
    """Section 3.6: an FP means the pair is omitted, so Phi/W under-count."""
    params = UFabParams(bloom_bits=8, bloom_hashes=2)  # tiny, collides a lot
    link = Link("l", "a", "b", 10e9)
    agent = CoreAgent(link, params)
    for i in range(64):
        agent.on_probe(probe(f"p{i}", 10, 10), 0.0)
    assert agent.false_positives > 0
    # Under-estimate, never over-estimate.
    assert agent.phi_total <= 64 * 10


def test_measured_tx_windows_over_bytes():
    agent, link = make_agent()
    link.set_inflow(0.0, 4e9)
    agent.measured_tx(0.0)  # prime the windowed meter
    # After 100 us of 4 Gbps the windowed meter reads ~4 Gbps (EWMA'd).
    value = agent.measured_tx(100e-6)
    assert 0.0 <= value <= 10e9
    link.set_inflow(100e-6, 0.0)
    later = agent.measured_tx(600e-6)
    assert later < value  # decays toward zero


def test_target_capacity_applies_headroom():
    agent, _ = make_agent()
    assert agent.target_capacity() == pytest.approx(0.95 * 10e9)


def test_attach_core_agents_covers_all_links():
    topo = three_tier_testbed()
    agents = attach_core_agents(topo)
    assert set(agents) == set(topo.links)
    for name, link in topo.links.items():
        assert link.core_agent is agents[name]
