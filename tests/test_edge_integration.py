"""Integration tests: the full uFAB control loop on simulated fabrics.

These check the paper's three design goals end to end: minimum
bandwidth guarantee, work conservation, and bounded tail latency —
plus path migration, failure handling, and register lifecycle.
"""

import math

import pytest

from repro.core.edge import PairState, install_ufab
from repro.core.params import UFabParams
from repro.sim.host import VMPair
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.topology import dumbbell, three_tier_testbed


def dumbbell_fabric(n_pairs=3, **param_kw):
    topo = dumbbell(n_pairs=n_pairs)
    net = Network(topo)
    fabric = install_ufab(net, UFabParams(**param_kw))
    return topo, net, fabric


def add(fabric, i, phi, demand=math.inf):
    pair = VMPair(f"p{i}", vf=f"vf{i}", src_host=f"src{i}", dst_host=f"dst{i}",
                  phi=phi, demand_bps=demand)
    fabric.add_pair(pair)
    return pair


# ----------------------------------------------------------------------
# Goal (i): minimum bandwidth guarantee via proportional sharing
# ----------------------------------------------------------------------

def test_converges_to_token_proportional_shares():
    topo, net, fabric = dumbbell_fabric(3)
    for i, phi in enumerate((1000, 2000, 5000)):
        add(fabric, i, phi)
    net.run(0.02)
    rates = [net.delivered_rate(f"p{i}") for i in range(3)]
    total = sum(rates)
    assert total == pytest.approx(0.95 * 10e9, rel=0.02)
    assert rates[1] / rates[0] == pytest.approx(2.0, rel=0.05)
    assert rates[2] / rates[0] == pytest.approx(5.0, rel=0.05)


def test_guarantees_met_when_feasible():
    topo, net, fabric = dumbbell_fabric(3)
    pairs = [add(fabric, i, phi) for i, phi in enumerate((1000, 3000, 4000))]
    net.run(0.02)
    for pair in pairs:
        assert net.delivered_rate(pair.pair_id) >= 0.9 * pair.phi * 1e6


def test_zero_queue_at_steady_state():
    topo, net, fabric = dumbbell_fabric(2)
    add(fabric, 0, 3000)
    add(fabric, 1, 3000)
    net.run(0.03)
    assert topo.link("SW1", "SW2").queue_bits(net.sim.now) < 1e4  # ~1 KB


# ----------------------------------------------------------------------
# Goal (ii): work conservation
# ----------------------------------------------------------------------

def test_spare_capacity_goes_to_backlogged_pair():
    topo, net, fabric = dumbbell_fabric(2)
    add(fabric, 0, 5000, demand=1e9)  # big tokens, tiny demand
    add(fabric, 1, 1000)  # small tokens, backlogged
    net.run(0.05)
    assert net.delivered_rate("p0") == pytest.approx(1e9, rel=0.05)
    assert net.delivered_rate("p1") == pytest.approx(8.5e9, rel=0.05)


def test_guarantee_reclaimed_quickly_after_demand_resumes():
    topo, net, fabric = dumbbell_fabric(2)
    add(fabric, 0, 5000, demand=1e9)
    add(fabric, 1, 1000)
    net.run(0.05)
    fabric.set_demand("p0", math.inf)
    net.run(0.051)  # one millisecond later
    # p0 reclaims its 5:1 proportional share at sub-ms timescale.
    assert net.delivered_rate("p0") >= 0.9 * (5 / 6) * 9.5e9


def test_single_pair_uses_full_target_capacity():
    topo, net, fabric = dumbbell_fabric(1)
    add(fabric, 0, 100)  # tiny guarantee, but alone
    net.run(0.02)
    assert net.delivered_rate("p0") == pytest.approx(9.5e9, rel=0.02)


# ----------------------------------------------------------------------
# Goal (iii): bounded latency under incast
# ----------------------------------------------------------------------

def test_incast_queue_bounded_by_3bdp():
    topo = three_tier_testbed()
    net = Network(topo)
    fabric = install_ufab(net, UFabParams())
    for i in range(10):
        pair = VMPair(f"p{i}", f"vf{i}", f"S{1 + i % 7}", "S8", phi=500)
        fabric.add_pair(pair)
    net.run(0.03)
    bottleneck = topo.link("ToR4", "S8")
    base_rtt = 24e-6
    bdp = bottleneck.capacity * base_rtt
    assert bottleneck.peak_queue <= 3.0 * bdp * 1.1


def test_two_stage_bounds_burst_vs_prime():
    """uFAB' (no two-stage admission) bursts harder than uFAB."""
    def peak_queue(two_stage):
        topo = three_tier_testbed()
        net = Network(topo)
        fabric = install_ufab(net, UFabParams(two_stage_admission=two_stage))
        for i in range(12):
            fabric.add_pair(VMPair(f"p{i}", f"vf{i}", f"S{1 + i % 7}", "S8", phi=500))
        net.run(0.02)
        return topo.link("ToR4", "S8").peak_queue

    assert peak_queue(True) < peak_queue(False)


# ----------------------------------------------------------------------
# Path management
# ----------------------------------------------------------------------

def test_pairs_spread_across_parallel_paths():
    topo = three_tier_testbed()
    net = Network(topo)
    fabric = install_ufab(net, UFabParams(n_candidate_paths=8))
    # Four 5G-class pairs cannot share core uplinks pairwise (9.5 cap).
    pairs = [
        VMPair(f"p{i}", f"vf{i}", src, dst, phi=5000)
        for i, (src, dst) in enumerate(
            [("S1", "S5"), ("S2", "S6"), ("S3", "S7"), ("S4", "S8")]
        )
    ]
    for p in pairs:
        fabric.add_pair(p)
    net.run(0.05)
    for p in pairs:
        assert net.delivered_rate(p.pair_id) >= 0.85 * 5e9


def test_failure_triggers_migration():
    topo = three_tier_testbed()
    net = Network(topo)
    fabric = install_ufab(net, UFabParams(n_candidate_paths=8))
    pair = VMPair("p", "vf", "S1", "S5", phi=2000)
    fabric.add_pair(pair)
    net.run(0.02)
    assert net.delivered_rate("p") > 1e9
    # Kill whatever core switch the pair currently crosses.
    core = next(l.dst for l in net.path_of("p") if l.dst.startswith("Core"))
    net.fail_node(core)
    net.run(0.03)
    assert net.delivered_rate("p") >= 0.9 * 9.5e9  # re-homed and recovered
    assert fabric.controller("p").stats["migrations"] >= 1
    assert not any(l.dst == core or l.src == core for l in net.path_of("p"))


def test_scout_probes_do_not_subscribe_candidates():
    topo = three_tier_testbed()
    net = Network(topo)
    fabric = install_ufab(net, UFabParams(n_candidate_paths=8))
    pair = VMPair("p", "vf", "S1", "S5", phi=2000)
    fabric.add_pair(pair)
    net.run(0.01)
    chosen = set(net.path_of("p"))
    registered = [
        name for name, link in topo.links.items()
        if link.core_agent.phi_total > 0
    ]
    for name in registered:
        assert topo.links[name] in chosen


# ----------------------------------------------------------------------
# Lifecycle: idle, finish probes, register hygiene
# ----------------------------------------------------------------------

def test_idle_pair_retires_registers_and_resumes():
    topo, net, fabric = dumbbell_fabric(1, idle_timeout_s=0.5e-3)
    add(fabric, 0, 2000)
    net.run(0.01)
    fabric.set_demand("p0", 0.0)
    net.run(0.02)  # well past the idle timeout
    controller = fabric.controller("p0")
    assert controller.state == PairState.IDLE
    total_phi = sum(l.core_agent.phi_total for l in topo.links.values())
    assert total_phi == 0.0  # finish probes cleaned every register
    fabric.set_demand("p0", math.inf)
    net.run(0.022)
    assert net.delivered_rate("p0") > 1e9  # resumed within ~RTTs


def test_message_driven_pair_wakes_on_enqueue():
    topo, net, fabric = dumbbell_fabric(1, idle_timeout_s=0.5e-3)
    pair = VMPair("p0", "vf0", "src0", "dst0", phi=2000)
    net.attach_message_queue(pair)
    fabric.add_pair(pair)
    net.run(0.01)  # goes idle (no messages)
    pair.message_queue.enqueue(Message("m", 1e6, net.sim.now))
    net.run(0.012)
    assert pair.message_queue.completed, "message should complete after wake"


def test_remove_pair_cleans_up():
    topo, net, fabric = dumbbell_fabric(2)
    add(fabric, 0, 1000)
    add(fabric, 1, 1000)
    net.run(0.01)
    fabric.remove_pair("p0")
    net.run(0.02)
    assert "p0" not in net.pairs
    assert net.delivered_rate("p1") == pytest.approx(9.5e9, rel=0.05)


def test_receiver_token_bounds_effective_phi():
    topo, net, fabric = dumbbell_fabric(1)
    add(fabric, 0, 5000)
    # Receiver only admits 1000 tokens for this pair.
    fabric.edges["dst0"].receiver_tokens["p0"] = 1000.0
    net.run(0.02)
    controller = fabric.controller("p0")
    assert controller.phi() == 1000.0
