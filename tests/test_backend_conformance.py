"""Backend conformance: behavioral and pipeline must be bit-identical.

The ``pipeline`` backend (:mod:`repro.core.p4pipe`) re-implements the
core agent as an explicit Tofino-like match-action pipeline — stages,
one register-ALU RMW per register per packet, a stage budget, the
Figure-22 layout stamped field-by-field.  It is only admissible as a
backend if it is *bit-identical* to the behavioral reference on
everything an experiment can observe: probe payloads, hop records,
figure rows, and trace streams — across schemes, seeds, fault
schedules, telemetry plans, and both probe-transit modes.

Payload comparison is exact ``==`` after stripping ``events_processed``
and ``_obs`` (the trace streams are compared separately, in full).
``Job.backend`` carries the selection: ``execute_job`` pins it into
``REPRO_BACKEND`` around the cell, exactly as the process pool does.
"""

import dataclasses
import os

import pytest

from repro.faults.spec import parse_faults
from repro.runner.job import Job, execute_job

FIG11 = "repro.experiments.fig11_guarantee:cell"
RESIL = "repro.experiments.fig_resilience:cell"
TELEM = "repro.experiments.fig_telemetry:cell"

# Every injector mechanism at once: loss/delay windows, link flaps,
# frozen telemetry, and mid-run restarts/resets (the CoreReset path
# exercises PipelineCoreAgent.reset through the fault plane).
MIXED = ("probe_loss:0.02@1ms-4ms;probe_delay:20us+10us@2ms-6ms;"
         "link_flaps:mtbf=3ms,mttr=1ms/Agg;stale:1ms@3ms-5ms;"
         "core_reset:Core1@4ms;edge_restart:S1@5ms")

TELEM_PLANS = ("full", "sampled:k=4", "sampled:p=0.5,seed=11",
               "delta:rel=0.1", "sketch")


def _run(job, backend, transit="fast"):
    """Execute one cell in-process under (backend, transit mode)."""
    old = os.environ.get("REPRO_PROBE_TRANSIT")
    os.environ["REPRO_PROBE_TRANSIT"] = transit
    try:
        return execute_job(dataclasses.replace(job, backend=backend))
    finally:
        if old is None:
            del os.environ["REPRO_PROBE_TRANSIT"]
        else:
            os.environ["REPRO_PROBE_TRANSIT"] = old


def _strip(payload):
    return {k: v for k, v in payload.items()
            if k not in ("events_processed", "_obs")}


def _assert_conformant(job, transit="fast"):
    behavioral = _run(job, "behavioral", transit)
    pipeline = _run(job, "pipeline", transit)
    assert _strip(behavioral) == _strip(pipeline)


# ----------------------------------------------------------------------
# Figure cells under both backends
# ----------------------------------------------------------------------

@pytest.mark.parametrize("transit", ("fast", "slow"))
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_fig11_rows_identical_across_backends(seed, transit):
    _assert_conformant(Job(
        "fig11", FIG11, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "duration": 0.006, "seed": seed}),
        transit)


@pytest.mark.parametrize("transit", ("fast", "slow"))
@pytest.mark.parametrize("seed", (1, 2))
def test_faulted_resilience_identical_across_backends(seed, transit):
    dur = 0.008
    faults = parse_faults(MIXED, horizon=dur, seed=seed).to_config()
    _assert_conformant(Job(
        "fig_resilience", RESIL, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "axis": "mixed", "level": 1.0,
                "duration": dur, "seed": seed},
        faults=faults), transit)


@pytest.mark.parametrize("plan", TELEM_PLANS)
def test_telemetry_plans_identical_across_backends(plan):
    _assert_conformant(Job(
        "fig_telemetry", TELEM, scheme="ufab", seed=3,
        params={"plan": plan, "duration": 0.006,
                "join_interval": 0.0004, "seed": 3}))


def test_trace_streams_identical_across_backends():
    # Not just the figure rows: the full observability trace — every
    # register event, series sample, and gauge — must match record for
    # record (both backends emit through the same OBS metric objects).
    job = Job("fig11", FIG11, scheme="ufab", seed=3,
              params={"scheme": "ufab", "duration": 0.004, "seed": 3},
              obs={"trace": True, "trace_capacity": 200_000})
    behavioral = _run(job, "behavioral")
    pipeline = _run(job, "pipeline")
    assert _strip(behavioral) == _strip(pipeline)
    assert behavioral["_obs"]["trace"] == pipeline["_obs"]["trace"]


# ----------------------------------------------------------------------
# Cache-key and selection plumbing
# ----------------------------------------------------------------------

def test_backend_is_part_of_the_cache_key():
    base = Job("fig11", FIG11, scheme="ufab", seed=1,
               params={"scheme": "ufab", "duration": 0.004, "seed": 1})
    pipe = dataclasses.replace(base, backend="pipeline")
    explicit = dataclasses.replace(base, backend="behavioral")
    assert base.config_hash() != pipe.config_hash()
    # Pre-backend jobs keep their historical hash (backend folds in
    # only when set), so an explicit behavioral pin is a distinct key.
    assert base.config_hash() != explicit.config_hash()


def test_unknown_backend_fails_eagerly():
    job = Job("fig11", FIG11, scheme="ufab", seed=1,
              params={"scheme": "ufab", "duration": 0.004, "seed": 1},
              backend="no-such-backend")
    with pytest.raises(ValueError, match="behavioral"):
        execute_job(job)


def test_execute_job_restores_environment():
    job = Job("fig11", FIG11, scheme="ufab", seed=1,
              params={"scheme": "ufab", "duration": 0.003, "seed": 1},
              backend="pipeline")
    assert os.environ.get("REPRO_BACKEND") is None
    execute_job(job)
    assert os.environ.get("REPRO_BACKEND") is None
