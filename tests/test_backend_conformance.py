"""Backend conformance: alternative backends must be bit-identical.

The ``pipeline`` backend (:mod:`repro.core.p4pipe`) re-implements the
core agent as an explicit Tofino-like match-action pipeline — stages,
one register-ALU RMW per register per packet, a stage budget, the
Figure-22 layout stamped field-by-field.  The ``vector`` backend
(:mod:`repro.core.veccore`) keeps all per-link register state in dense
per-network SoA columns and fuses link integration with uFAB stamping
on the probe fast path.  Either is only admissible as a backend if it
is *bit-identical* to the behavioral reference on everything an
experiment can observe: probe payloads, hop records, figure rows, and
trace streams — across schemes, seeds, fault schedules, telemetry
plans, and both probe-transit modes.

Payload comparison is exact ``==`` after stripping ``events_processed``
and ``_obs`` (the trace streams are compared separately, in full).
``Job.backend`` carries the selection: ``execute_job`` pins it into
``REPRO_BACKEND`` around the cell, exactly as the process pool does.
"""

import dataclasses
import os

import pytest

from repro.faults.spec import parse_faults
from repro.runner.job import Job, execute_job

FIG11 = "repro.experiments.fig11_guarantee:cell"
RESIL = "repro.experiments.fig_resilience:cell"
TELEM = "repro.experiments.fig_telemetry:cell"

# Every injector mechanism at once: loss/delay windows, link flaps,
# frozen telemetry, and mid-run restarts/resets (the CoreReset path
# exercises PipelineCoreAgent.reset through the fault plane).
MIXED = ("probe_loss:0.02@1ms-4ms;probe_delay:20us+10us@2ms-6ms;"
         "link_flaps:mtbf=3ms,mttr=1ms/Agg;stale:1ms@3ms-5ms;"
         "core_reset:Core1@4ms;edge_restart:S1@5ms")

TELEM_PLANS = ("full", "sampled:k=4", "sampled:p=0.5,seed=11",
               "delta:rel=0.1", "sketch")


def _run(job, backend, transit="fast"):
    """Execute one cell in-process under (backend, transit mode)."""
    old = os.environ.get("REPRO_PROBE_TRANSIT")
    os.environ["REPRO_PROBE_TRANSIT"] = transit
    try:
        return execute_job(dataclasses.replace(job, backend=backend))
    finally:
        if old is None:
            del os.environ["REPRO_PROBE_TRANSIT"]
        else:
            os.environ["REPRO_PROBE_TRANSIT"] = old


def _strip(payload):
    return {k: v for k, v in payload.items()
            if k not in ("events_processed", "_obs")}


ALT_BACKENDS = ("pipeline", "vector")


def _assert_conformant(job, backend, transit="fast"):
    behavioral = _run(job, "behavioral", transit)
    candidate = _run(job, backend, transit)
    assert _strip(behavioral) == _strip(candidate)


# ----------------------------------------------------------------------
# Figure cells under every backend
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("transit", ("fast", "slow"))
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_fig11_rows_identical_across_backends(seed, transit, backend):
    _assert_conformant(Job(
        "fig11", FIG11, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "duration": 0.006, "seed": seed}),
        backend, transit)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("transit", ("fast", "slow"))
@pytest.mark.parametrize("seed", (1, 2))
def test_faulted_resilience_identical_across_backends(seed, transit, backend):
    dur = 0.008
    faults = parse_faults(MIXED, horizon=dur, seed=seed).to_config()
    _assert_conformant(Job(
        "fig_resilience", RESIL, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "axis": "mixed", "level": 1.0,
                "duration": dur, "seed": seed},
        faults=faults), backend, transit)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("plan", TELEM_PLANS)
def test_telemetry_plans_identical_across_backends(plan, backend):
    _assert_conformant(Job(
        "fig_telemetry", TELEM, scheme="ufab", seed=3,
        params={"plan": plan, "duration": 0.006,
                "join_interval": 0.0004, "seed": 3}), backend)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_trace_streams_identical_across_backends(backend):
    # Not just the figure rows: the full observability trace — every
    # register event, series sample, and gauge — must match record for
    # record (all backends emit through the same OBS metric objects).
    job = Job("fig11", FIG11, scheme="ufab", seed=3,
              params={"scheme": "ufab", "duration": 0.004, "seed": 3},
              obs={"trace": True, "trace_capacity": 200_000})
    behavioral = _run(job, "behavioral")
    candidate = _run(job, backend)
    assert _strip(behavioral) == _strip(candidate)
    assert behavioral["_obs"]["trace"] == candidate["_obs"]["trace"]


# ----------------------------------------------------------------------
# Cache-key and selection plumbing
# ----------------------------------------------------------------------

def test_backend_is_part_of_the_cache_key():
    base = Job("fig11", FIG11, scheme="ufab", seed=1,
               params={"scheme": "ufab", "duration": 0.004, "seed": 1})
    pipe = dataclasses.replace(base, backend="pipeline")
    explicit = dataclasses.replace(base, backend="behavioral")
    assert base.config_hash() != pipe.config_hash()
    # Pre-backend jobs keep their historical hash (backend folds in
    # only when set), so an explicit behavioral pin is a distinct key.
    assert base.config_hash() != explicit.config_hash()


def test_unknown_backend_fails_eagerly():
    job = Job("fig11", FIG11, scheme="ufab", seed=1,
              params={"scheme": "ufab", "duration": 0.004, "seed": 1},
              backend="no-such-backend")
    with pytest.raises(ValueError, match="behavioral"):
        execute_job(job)


def test_unknown_backend_error_lists_every_registered_name():
    # The eager-validation message must enumerate the registry so a typo
    # in a sweep config is self-diagnosing (default listed first).
    from repro.core.controller import backend_names, resolve_backend
    names = backend_names()
    assert names[0] == "behavioral"
    assert "pipeline" in names and "vector" in names
    with pytest.raises(ValueError) as err:
        resolve_backend("no-such-backend")
    for name in names:
        assert name in str(err.value)


def test_unknown_solver_mode_error_lists_valid_modes():
    # Same contract for the fluid solver's REPRO_SOLVER modes.
    from repro.sim.fluid import FluidSolver
    with pytest.raises(ValueError) as err:
        FluidSolver(mode="no-such-mode")
    for mode in ("auto", "scalar", "vector"):
        assert mode in str(err.value)


def test_execute_job_restores_environment():
    job = Job("fig11", FIG11, scheme="ufab", seed=1,
              params={"scheme": "ufab", "duration": 0.003, "seed": 1},
              backend="pipeline")
    assert os.environ.get("REPRO_BACKEND") is None
    execute_job(job)
    assert os.environ.get("REPRO_BACKEND") is None
