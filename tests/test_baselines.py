"""Unit + integration tests for the baseline schemes."""

import math
import random

import pytest

from repro.baselines import (
    CloveSelector,
    EcmpSelector,
    ESCloveFabric,
    PWCFabric,
    StaticSelector,
    make_fabric,
)
from repro.baselines.fabrics import SCHEME_NAMES, WccEcmpFabric
from repro.sim.host import VMPair
from repro.sim.network import Network
from repro.sim.topology import dumbbell, three_tier_testbed


def run_dumbbell(fabric_maker, phis, duration=0.05, demands=None):
    topo = dumbbell(n_pairs=len(phis))
    net = Network(topo)
    fabric = fabric_maker(net)
    pairs = []
    for i, phi in enumerate(phis):
        demand = demands[i] if demands else math.inf
        pair = VMPair(f"p{i}", f"vf{i}", f"src{i}", f"dst{i}", phi=phi, demand_bps=demand)
        fabric.add_pair(pair)
        pairs.append(pair)
    net.run(duration)
    return topo, net, fabric, pairs


# ----------------------------------------------------------------------
# WCC (Swift)
# ----------------------------------------------------------------------

def test_wcc_reaches_high_utilization_eventually():
    topo, net, _, _ = run_dumbbell(WccEcmpFabric, [2000, 2000], duration=0.08)
    total = net.delivered_rate("p0") + net.delivered_rate("p1")
    assert total >= 0.5 * 10e9  # sawtooth average, not precise


def test_wcc_weighted_shares_favor_heavier_pair():
    topo, net, _, _ = run_dumbbell(WccEcmpFabric, [500, 4000], duration=0.1)
    assert net.delivered_rate("p1") > net.delivered_rate("p0")


def test_wcc_rate_fluctuates_at_steady_state():
    """AIMD sawtooth: WCC keeps oscillating where uFAB sits still —
    the instability behind the paper's 'tens of ms' convergence claim."""
    topo = dumbbell(n_pairs=2)
    net = Network(topo)
    fabric = WccEcmpFabric(net)
    for i in range(2):
        fabric.add_pair(VMPair(f"p{i}", f"vf{i}", f"src{i}", f"dst{i}", phi=2000))
    samples = []

    def sample():
        samples.append(net.delivered_rate("p0"))
        if net.sim.now < 0.079:
            net.sim.schedule(2e-4, sample)

    net.sim.at(0.04, sample)  # steady-state window only
    net.run(0.08)
    mean = sum(samples) / len(samples)
    spread = max(samples) - min(samples)
    assert spread > 0.05 * mean


# ----------------------------------------------------------------------
# ElasticSwitch RA
# ----------------------------------------------------------------------

def test_es_rate_never_below_guarantee():
    topo, net, fabric, pairs = run_dumbbell(
        ESCloveFabric, [4000, 4000, 4000], duration=0.05
    )
    for pair in pairs:
        controller = fabric.controller(pair.pair_id)
        assert controller.state["rate"] >= pair.phi * 1e6 * (1 - 1e-9)


def test_es_overload_builds_queue():
    """Guarantee floors above capacity force standing queues (Fig 11e)."""
    topo, net, fabric, pairs = run_dumbbell(
        ESCloveFabric, [6000, 6000], duration=0.05  # 12G floors on 10G
    )
    assert topo.link("SW1", "SW2").queue_bits(net.sim.now) > 1e5


# ----------------------------------------------------------------------
# PicNIC' receiver grants
# ----------------------------------------------------------------------

def test_picnic_grants_cap_at_receiver_capacity():
    topo = dumbbell(n_pairs=4)
    # All four senders target dst0 by rebuilding pair dsts.
    net = Network(topo)
    fabric = PWCFabric(net)
    pairs = [
        VMPair(f"p{i}", f"vf{i}", f"src{i}", "dst0", phi=1000) for i in range(4)
    ]
    for p in pairs:
        fabric.add_pair(p)
    net.run(0.05)
    total = sum(net.delivered_rate(p.pair_id) for p in pairs)
    assert total <= 10e9 * 1.01


def test_pwc_cannot_see_fabric_congestion():
    """Grants reflect the receiver NIC only: with distinct receivers but
    a shared core bottleneck, grants stay high and the fabric queues."""
    topo, net, fabric, pairs = run_dumbbell(PWCFabric, [3000, 3000], duration=0.02)
    for pair in pairs:
        grant = fabric.grant_for(pair)
        assert grant > 5e9  # receiver side sees no contention


# ----------------------------------------------------------------------
# Clove
# ----------------------------------------------------------------------

def test_clove_initial_path_is_least_utilized():
    topo = three_tier_testbed()
    net = Network(topo)
    fabric = ESCloveFabric(net)
    all_paths = topo.shortest_paths("S1", "S5")
    # Two candidates that diverge at the ToR->Agg hop.
    paths = [
        next(p for p in all_paths if p[1].dst == "Agg1"),
        next(p for p in all_paths if p[1].dst == "Agg2"),
    ]
    # Preload path 0's ToR->Agg link.
    paths[0][1].set_inflow(0.0, 9e9)
    pair = VMPair("p", "vf", "S1", "S5", phi=100)
    controller = fabric.add_pair(pair, candidates=paths)
    assert controller.current_idx == 1


def test_clove_respects_flowlet_gap():
    selector = CloveSelector(flowlet_gap_s=1.0)

    class FakePair:
        current_idx = 0
        last_path_switch = 0.0

    # At t=0.5 the gap has not elapsed: no switch even if better exists.
    assert selector.on_feedback(FakePair(), {0: 0.9, 1: 0.1}, now=0.5) is None
    assert selector.on_feedback(FakePair(), {0: 0.9, 1: 0.1}, now=1.5) == 1


def test_clove_ignores_marginal_improvements():
    selector = CloveSelector(flowlet_gap_s=0.0, switch_margin=0.05)

    class FakePair:
        current_idx = 0
        last_path_switch = -1.0

    assert selector.on_feedback(FakePair(), {0: 0.50, 1: 0.48}, now=1.0) is None


# ----------------------------------------------------------------------
# ECMP
# ----------------------------------------------------------------------

def test_ecmp_is_deterministic_per_pair():
    selector = EcmpSelector(seed=7)

    class FakePair:
        def __init__(self, pid):
            self.candidates = [0, 1, 2, 3]
            self.pair = type("P", (), {"pair_id": pid})()

    rng = random.Random(0)
    a1 = selector.initial_path(FakePair("x"), rng)
    a2 = selector.initial_path(FakePair("x"), rng)
    assert a1 == a2
    assert selector.on_feedback(None, {}, 0.0) is None


def test_polarized_ecmp_uses_fewer_paths():
    plain = EcmpSelector(seed=1)
    polarized = EcmpSelector(seed=1, polarized=True, polarized_fraction=0.25)

    class FakePair:
        def __init__(self, pid):
            self.candidates = list(range(8))
            self.pair = type("P", (), {"pair_id": pid})()

    rng = random.Random(0)
    plain_choices = {plain.initial_path(FakePair(f"p{i}"), rng) for i in range(64)}
    pol_choices = {polarized.initial_path(FakePair(f"p{i}"), rng) for i in range(64)}
    assert len(pol_choices) <= 2
    assert len(plain_choices) >= 5


def test_static_selector_pins_index():
    sel = StaticSelector(index=2)

    class FakePair:
        candidates = [0, 1, 2, 3]

    assert sel.initial_path(FakePair(), random.Random(0)) == 2


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------

def test_make_fabric_all_names():
    for name in SCHEME_NAMES + ("wcc+ecmp", "wcc+ecmp-polarized"):
        net = Network(dumbbell(n_pairs=1))
        fabric = make_fabric(name, net)
        assert hasattr(fabric, "add_pair")


def test_make_fabric_unknown_name():
    with pytest.raises(ValueError):
        make_fabric("nope", Network(dumbbell(n_pairs=1)))


def test_ufab_prime_disables_two_stage():
    net = Network(dumbbell(n_pairs=1))
    fabric = make_fabric("ufab-prime", net)
    assert fabric.params.two_stage_admission is False
