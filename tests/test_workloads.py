"""Unit tests for workload generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.edge import install_ufab
from repro.core.params import UFabParams
from repro.sim.host import VMPair
from repro.sim.network import Network
from repro.sim.topology import dumbbell, three_tier_testbed
from repro.workloads.flowsize import (
    KEY_VALUE_CDF,
    WEB_SEARCH_CDF,
    EmpiricalSize,
    PoissonFlowGenerator,
)
from repro.workloads.synthetic import OnOffDemand, incast_pairs, permutation_pairs, staggered_joins
from repro.workloads.tenants import synthesize_tenants


# ----------------------------------------------------------------------
# Flow sizes
# ----------------------------------------------------------------------

def test_empirical_samples_within_support():
    dist = EmpiricalSize(WEB_SEARCH_CDF)
    rng = random.Random(0)
    lo, hi = WEB_SEARCH_CDF[0][1], WEB_SEARCH_CDF[-1][1]
    for _ in range(500):
        assert lo <= dist.sample(rng) <= hi


def test_empirical_mean_close_to_analytic():
    dist = EmpiricalSize(WEB_SEARCH_CDF)
    rng = random.Random(1)
    empirical = sum(dist.sample(rng) for _ in range(20000)) / 20000
    assert empirical == pytest.approx(dist.mean(), rel=0.1)


def test_key_value_mean_matches_fig13_workload():
    """Figure 13: 'an empirical distribution of key-value workload with
    a mean size of 2 KB'."""
    assert EmpiricalSize(KEY_VALUE_CDF).mean() == pytest.approx(2000, rel=0.5)


def test_invalid_cdf_rejected():
    with pytest.raises(ValueError):
        EmpiricalSize([(0.0, 1.0), (0.9, 2.0)])  # doesn't reach 1.0
    with pytest.raises(ValueError):
        EmpiricalSize([(0.0, 1.0), (0.6, 2.0), (0.3, 3.0), (1.0, 4.0)])


def test_poisson_generator_hits_target_load():
    topo = dumbbell(n_pairs=2)
    net = Network(topo)
    fabric = install_ufab(net, UFabParams())
    pairs = []
    for i in range(2):
        pair = VMPair(f"p{i}", f"vf{i}", f"src{i}", f"dst{i}", phi=4000)
        net.attach_message_queue(pair)
        fabric.add_pair(pair)
        pairs.append(pair)
    dist = EmpiricalSize(KEY_VALUE_CDF)
    _generator = PoissonFlowGenerator(
        net.sim, pairs, dist, load=0.3, reference_capacity=10e9,
        rng=random.Random(3), until=0.05,
    )
    net.run(0.05)
    offered_bits = sum(
        m.size_bits
        for p in pairs
        for m in p.message_queue.completed
    )
    offered_bps = offered_bits / 0.05
    assert offered_bps == pytest.approx(0.3 * 10e9, rel=0.35)


def test_poisson_generator_requires_pairs():
    with pytest.raises(ValueError):
        PoissonFlowGenerator(Network(dumbbell()).sim, [], EmpiricalSize(KEY_VALUE_CDF),
                             0.5, 10e9)


# ----------------------------------------------------------------------
# Synthetic patterns
# ----------------------------------------------------------------------

def test_permutation_pairs_structure():
    pairs = permutation_pairs(["S1", "S2"], ["S5", "S6"], [1000, 2000])
    assert len(pairs) == 4
    hosts = {(p.src_host, p.dst_host) for p in pairs}
    assert hosts == {("S1", "S5"), ("S2", "S6")}
    assert {p.phi for p in pairs} == {1000, 2000}
    assert len({p.vf for p in pairs}) == 4  # each is its own VF


def test_incast_pairs_share_destination():
    pairs = incast_pairs(["S1", "S2", "S3"], "S8", tokens=500)
    assert all(p.dst_host == "S8" for p in pairs)
    assert len({p.pair_id for p in pairs}) == 3


def test_on_off_demand_toggles():
    net = Network(dumbbell(n_pairs=1))
    fabric = install_ufab(net, UFabParams())
    pair = VMPair("p0", "vf0", "src0", "dst0", phi=1000, demand_bps=0.5e9)
    fabric.add_pair(pair)
    toggler = OnOffDemand(net.sim, "p0", fabric.set_demand, low_bps=0.5e9,
                          period_s=2e-3, phase_s=2e-3)
    net.run(0.001)
    assert pair.demand_bps == 0.5e9  # before the first toggle
    net.run(0.0025)  # first toggle at t=2 ms -> high
    assert pair.demand_bps == float("inf")
    net.run(0.0045)  # next toggle at t=4 ms -> low again
    assert pair.demand_bps == 0.5e9
    net.run(0.006)
    toggler.stop()
    demand_at_stop = pair.demand_bps
    net.run(0.02)
    assert pair.demand_bps == demand_at_stop  # no toggles after stop


def test_staggered_joins_schedule():
    net = Network(dumbbell(n_pairs=3))
    fabric = install_ufab(net, UFabParams())
    pairs = [
        VMPair(f"p{i}", f"vf{i}", f"src{i}", f"dst{i}", phi=100) for i in range(3)
    ]
    staggered_joins(net.sim, fabric.add_pair, pairs, interval_s=5e-3)
    net.run(0.006)
    assert set(net.pairs) == {"p0", "p1"}
    net.run(0.02)
    assert set(net.pairs) == {"p0", "p1", "p2"}


# ----------------------------------------------------------------------
# Tenant synthesis
# ----------------------------------------------------------------------

def test_tenants_respect_host_subscription_budget():
    topo = three_tier_testbed()
    rng = random.Random(5)
    tenants = synthesize_tenants(
        topo.hosts(), n_tenants=12, unit_bandwidth=1e6, host_capacity=10e9,
        rng=rng,
    )
    subscription = {}
    for t in tenants:
        for host in t.vm_hosts:
            subscription[host] = subscription.get(host, 0.0) + t.guarantee_tokens
    for host, tokens in subscription.items():
        assert tokens * 1e6 <= 0.9 * 10e9 + 1e-6


def test_tenant_pairs_split_hose_guarantee():
    topo = three_tier_testbed()
    tenants = synthesize_tenants(topo.hosts(), 4, 1e6, 10e9, random.Random(0))
    for tenant in tenants:
        by_src = {}
        for pair in tenant.pairs:
            by_src.setdefault(pair.src_host, 0.0)
            by_src[pair.src_host] += pair.phi
        for src, total in by_src.items():
            assert total == pytest.approx(tenant.guarantee_tokens, rel=1e-6)


def test_tenant_pairs_never_self_loop():
    topo = three_tier_testbed()
    tenants = synthesize_tenants(topo.hosts(), 8, 1e6, 10e9, random.Random(1))
    for tenant in tenants:
        for pair in tenant.pairs:
            assert pair.src_host != pair.dst_host


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_tenant_synthesis_is_deterministic_per_seed(seed):
    topo = three_tier_testbed()
    a = synthesize_tenants(topo.hosts(), 5, 1e6, 10e9, random.Random(seed))
    b = synthesize_tenants(topo.hosts(), 5, 1e6, 10e9, random.Random(seed))
    assert [t.vm_hosts for t in a] == [t.vm_hosts for t in b]
    assert [[p.pair_id for p in t.pairs] for t in a] == [
        [p.pair_id for p in t.pairs] for t in b
    ]
