"""Unit tests for token assignment (Appendix E, Algorithm 1)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.token import (
    UNBOUND,
    PairDemand,
    TokenManager,
    token_admission,
    token_assignment,
)

BU = 1e6  # unit bandwidth


def pairs_with(*tx_rates):
    return [PairDemand(pair_id=f"p{i}", tx_rate=tx) for i, tx in enumerate(tx_rates)]


def test_equal_split_with_equal_demands():
    ps = pairs_with(5e9, 5e9, 5e9, 5e9)
    token_assignment(4000, ps, BU)
    assert all(p.phi_sender == pytest.approx(1000) for p in ps)


def test_fig21a_sufficient_demand_example():
    """Figure 21a: equal distribution when all pairs have demand."""
    ps = pairs_with(10e9, 10e9, 10e9)
    token_assignment(3000, ps, BU)
    assert [p.phi_sender for p in ps] == pytest.approx([1000, 1000, 1000])


def test_fig21b_insufficient_demand_redistributes():
    """Figure 21b: a pair with tiny demand epsilon keeps its fair share
    (instant ramp) while its spare goes to the others."""
    epsilon = 10 * BU  # 10 tokens of demand
    ps = pairs_with(20e9, 20e9, epsilon)
    token_assignment(3000, ps, BU)
    fair = 1000.0
    spare = fair - 10.0
    assert ps[2].phi_sender == pytest.approx(fair)  # boost option
    assert ps[0].phi_sender == pytest.approx(fair + spare / 2)
    assert ps[1].phi_sender == pytest.approx(fair + spare / 2)


def test_over_assignment_bounded_by_double():
    """'In the worst case, we only assign double the VM-pair's token'."""
    ps = pairs_with(0.0, 0.0, 50e9)
    token_assignment(3000, ps, BU)
    total = sum(p.phi_sender for p in ps)
    assert total <= 2 * 3000 + 1e-6


def test_receiver_bounded_pairs_release_tokens():
    ps = pairs_with(50e9, 50e9)
    ps[0].phi_receiver = 200.0  # receiver only admits 200
    token_assignment(2000, ps, BU)
    assert ps[0].phi_sender == pytest.approx(200)
    assert ps[1].phi_sender == pytest.approx(1800)


def test_assignment_empty_group():
    assert token_assignment(1000, [], BU) == []


def test_admission_max_min():
    ps = pairs_with(0, 0, 0)
    ps[0].phi_sender = 100.0  # small demand: unbounded
    ps[1].phi_sender = 5000.0
    ps[2].phi_sender = 5000.0
    token_admission(3000, ps)
    assert ps[0].phi_receiver == UNBOUND
    # The freed (fair - 100) raises the others' water level.
    expected = 1000 + (1000 - 100) / 2
    assert ps[1].phi_receiver == pytest.approx(expected)
    assert ps[2].phi_receiver == pytest.approx(expected)


def test_admission_all_heavy_demands_split_equally():
    ps = pairs_with(0, 0)
    ps[0].phi_sender = 9000.0
    ps[1].phi_sender = 9000.0
    token_admission(4000, ps)
    assert ps[0].phi_receiver == pytest.approx(2000)
    assert ps[1].phi_receiver == pytest.approx(2000)


def test_effective_phi_is_min_of_both_sides():
    p = PairDemand("x", phi_sender=800.0, phi_receiver=500.0)
    assert p.effective_phi() == 500.0
    p.phi_receiver = UNBOUND
    assert p.effective_phi() == 800.0


def test_token_manager_lifecycle():
    manager = TokenManager("vf1", 2000, BU)
    manager.update_tx("a", 10e9)
    manager.update_tx("b", 0.0)
    out = manager.reassign()
    a = next(p for p in out if p.pair_id == "a")
    b = next(p for p in out if p.pair_id == "b")
    assert a.phi_sender > b.phi_sender or b.phi_sender == pytest.approx(1000)
    manager.remove("a")
    assert all(p.pair_id != "a" for p in manager.pairs)


@settings(max_examples=60)
@given(
    phi_vf=st.floats(min_value=1, max_value=1e5),
    tx_rates=st.lists(st.floats(min_value=0, max_value=100e9), min_size=1, max_size=12),
)
def test_assignment_invariants(phi_vf, tx_rates):
    ps = pairs_with(*tx_rates)
    token_assignment(phi_vf, ps, BU)
    # Non-negative, every pair assigned, over-assignment bounded by 2x.
    assert all(p.phi_sender >= 0 for p in ps)
    assert sum(p.phi_sender for p in ps) <= 2 * phi_vf * (1 + 1e-9)
    # Pairs with sufficient demand get at least the fair share.
    fair = phi_vf / len(ps)
    for p in ps:
        if p.tx_rate / BU >= fair and p.phi_receiver == UNBOUND:
            assert p.phi_sender >= fair * (1 - 1e-9)


@settings(max_examples=60)
@given(
    phi_vf=st.floats(min_value=1, max_value=1e5),
    demands=st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=12),
)
def test_admission_invariants(phi_vf, demands):
    ps = pairs_with(*([0.0] * len(demands)))
    for p, d in zip(ps, demands):
        p.phi_sender = d
    token_admission(phi_vf, ps)
    granted = [min(p.phi_sender, p.phi_receiver) for p in ps]
    # The receiver never admits more than the VF's tokens in total.
    assert sum(granted) <= phi_vf * (1 + 1e-6) + 1e-6
    # Max-min: a bounded pair's grant is never below an unbounded demand.
    bounded = [p.phi_receiver for p in ps if p.phi_receiver != UNBOUND]
    unbounded_demands = [p.phi_sender for p in ps if p.phi_receiver == UNBOUND]
    if bounded and unbounded_demands:
        assert min(bounded) >= max(unbounded_demands) * (1 - 1e-6)
