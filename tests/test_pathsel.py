"""Unit tests for path qualification and selection (section 3.5)."""

import random

import pytest

from repro.core.params import UFabParams
from repro.core.pathsel import PathBook, PathQuality, summarize_path
from repro.core.probe import HopRecord
from repro.sim.topology import three_tier_testbed

PARAMS = UFabParams(unit_bandwidth=1e6)


def hop(phi_total, capacity=10e9, tx=5e9, queue=0.0, window=1e5):
    return HopRecord(window_total=window, phi_total=phi_total, tx_rate=tx,
                     queue=queue, capacity=capacity, link_name="l")


def quality(subscription=0.5, headroom=5000.0, wc_rate=5e9, share=2e9,
            queue=0.0, rtt=24e-6):
    return PathQuality(subscription=subscription, headroom_tokens=headroom,
                       share_rate=share, wc_rate=wc_rate, max_queue=queue,
                       measured_rtt=rtt, updated_at=0.0)


def make_book(n=3):
    topo = three_tier_testbed()
    paths = topo.shortest_paths("S1", "S5")[:n]
    return PathBook(paths)


# ----------------------------------------------------------------------
# summarize_path
# ----------------------------------------------------------------------

def test_summarize_takes_worst_hop():
    hops = [hop(phi_total=1000), hop(phi_total=8000), hop(phi_total=4000)]
    q = summarize_path(hops, phi=500, measured_rtt=24e-6, now=0.0, params=PARAMS)
    c_target = PARAMS.target_capacity(10e9)
    assert q.subscription == pytest.approx(8000 * 1e6 / c_target)
    assert q.headroom_tokens == pytest.approx(c_target / 1e6 - 8000)
    assert q.share_rate == pytest.approx(500 / 8000 * c_target)


def test_summarize_tracks_max_queue():
    hops = [hop(1000, queue=1e4), hop(1000, queue=5e4)]
    q = summarize_path(hops, 100, 24e-6, 0.0, PARAMS)
    assert q.max_queue == 5e4


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize_path([], 100, 24e-6, 0.0, PARAMS)


# ----------------------------------------------------------------------
# Qualification: C_l >= (Phi_l + phi) * B_u
# ----------------------------------------------------------------------

def test_qualification_counts_joining_tokens():
    # target capacity: PARAMS.target_capacity(10e9) / 1e6 tokens = 9500
    q = summarize_path([hop(phi_total=9000)], phi=400, measured_rtt=24e-6,
                       now=0.0, params=PARAMS)
    assert q.qualified_for(400, PARAMS.unit_bandwidth)  # 9400 <= 9500
    assert not q.qualified_for(600, PARAMS.unit_bandwidth)  # 9600 > 9500


def test_qualification_relaxed_when_already_on_path():
    q = summarize_path([hop(phi_total=9400)], phi=400, measured_rtt=24e-6,
                       now=0.0, params=PARAMS)
    # Joining would exceed, but a pair already counted in Phi qualifies.
    assert not q.qualified_for(400, PARAMS.unit_bandwidth)
    assert q.qualified_for(400, PARAMS.unit_bandwidth, already_on=True)


# ----------------------------------------------------------------------
# PathBook selection
# ----------------------------------------------------------------------

def test_select_prefers_min_subscription():
    book = make_book(3)
    book.record(0, quality(subscription=0.9))
    book.record(1, quality(subscription=0.3))
    book.record(2, quality(subscription=0.6))
    rng = random.Random(0)
    picks = {book.select_initial(100, PARAMS, rng) for _ in range(20)}
    assert picks == {1}


def test_select_randomizes_near_ties():
    book = make_book(3)
    book.record(0, quality(subscription=0.30))
    book.record(1, quality(subscription=0.31))
    book.record(2, quality(subscription=0.9))
    rng = random.Random(1)
    picks = {book.select_initial(100, PARAMS, rng) for _ in range(50)}
    assert picks == {0, 1}


def test_select_skips_unqualified():
    book = make_book(2)
    book.record(0, quality(headroom=10.0))  # cannot fit 100 tokens
    book.record(1, quality(headroom=5000.0))
    rng = random.Random(0)
    assert book.select_initial(100, PARAMS, rng) == 1


def test_select_none_when_nothing_qualifies():
    book = make_book(2)
    book.record(0, quality(headroom=1.0))
    book.record(1, quality(headroom=1.0))
    assert book.select_initial(100, PARAMS, random.Random(0)) is None


def test_select_excludes_current():
    book = make_book(2)
    book.record(0, quality(subscription=0.1))
    book.record(1, quality(subscription=0.9))
    choice = book.select_initial(100, PARAMS, random.Random(0), exclude=0)
    assert choice == 1


def test_work_conservation_picks_largest_wc_rate():
    book = make_book(3)
    book.record(0, quality(wc_rate=1e9))
    book.record(1, quality(wc_rate=9e9))
    book.record(2, quality(wc_rate=5e9))
    assert book.select_for_work_conservation(100, PARAMS, current=0) == 1


def test_failed_paths_are_not_candidates():
    book = make_book(2)
    book.record(0, quality())
    book.record(1, quality())
    book.mark_failed(1)
    assert book.qualified_indices(100, PARAMS) == [0]


def test_best_fallback_prefers_live_least_subscribed():
    book = make_book(3)
    book.record(0, quality(subscription=0.9))
    book.record(1, quality(subscription=0.2))
    book.mark_failed(2)
    assert book.best_fallback(random.Random(0)) == 1


def test_fallback_with_everything_failed_still_returns_a_path():
    book = make_book(2)
    book.mark_failed(0)
    book.mark_failed(1)
    assert book.best_fallback(random.Random(0), exclude=0) == 1


def test_record_clears_failed_flag():
    book = make_book(1)
    book.mark_failed(0)
    book.record(0, quality())
    assert not book.failed[0]


def test_empty_candidates_rejected():
    with pytest.raises(ValueError):
        PathBook([])
