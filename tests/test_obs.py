"""Tests for the observability layer (repro.obs)."""

import dataclasses
import json
import os

import pytest

from repro.obs import OBS, ObsConfig
from repro.obs.docs import broken_links, check_docs, generated_markdown
from repro.obs.export import chrome_trace, trace_to_jsonl_lines, write_grid_outputs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.runner.job import execute_job

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fig11_job():
    from repro.experiments import fig11_guarantee

    return fig11_guarantee.grid(schemes=("ufab",), duration=0.004, seeds=(3,))[0]


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------

def test_obs_disabled_by_default():
    assert OBS.enabled is False
    # The inert trace swallows stray records without storing anything.
    OBS.trace.record(0.0, "stray", {})
    assert len(OBS.trace) == 0


def test_traced_payload_is_byte_identical_to_untraced():
    """Observation must not perturb results: a traced cell's payload,
    minus the attached capture, matches the plain disabled-mode run."""
    plain = execute_job(_fig11_job())
    traced = execute_job(dataclasses.replace(
        _fig11_job(), obs={"trace": True, "metrics": True}))
    capture = traced.pop("_obs")
    assert capture["trace"]
    assert json.dumps(plain, sort_keys=True) == json.dumps(traced, sort_keys=True)


def test_plain_job_payload_has_no_obs_key():
    assert "_obs" not in execute_job(_fig11_job())


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------

def test_ring_buffer_wraps_oldest_first():
    trace = Trace(4)
    for i in range(10):
        trace.record(float(i), "ev", {"i": i})
    assert trace.total == 10
    assert len(trace) == 4
    assert trace.dropped() == 6
    assert [f["i"] for _, _, f in trace.events()] == [6, 7, 8, 9]


def test_ring_buffer_below_capacity_keeps_order():
    trace = Trace(8)
    for i in range(3):
        trace.record(float(i), "ev", {"i": i})
    assert trace.dropped() == 0
    assert [f["i"] for _, _, f in trace.events()] == [0, 1, 2]


def test_zero_capacity_trace_is_inert():
    trace = Trace(0)
    trace.record(0.0, "ev")
    assert trace.total == 1 and len(trace) == 0 and trace.events() == []


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        Trace(-1)


# ----------------------------------------------------------------------
# Capture lifecycle
# ----------------------------------------------------------------------

def test_capture_scopes_enabled_flag_and_freezes_export():
    with OBS.capture({"trace": True}) as cap:
        assert OBS.enabled
        OBS.trace.record(1.0, "ev", {"x": 1})
    assert not OBS.enabled
    first = cap.export()
    assert first["trace"] == [[1.0, "ev", {"x": 1}]]
    # Post-capture records must not leak into the frozen export.
    OBS.trace.record(2.0, "ev", {"x": 2})
    assert cap.export() == first


def test_captures_do_not_nest():
    with OBS.capture({"trace": True}):
        with pytest.raises(RuntimeError):
            with OBS.capture({"trace": True}):
                pass


def test_unknown_config_key_rejected():
    with pytest.raises(ValueError):
        ObsConfig.from_mapping({"traec": True})


def test_metrics_reset_between_captures():
    # Use a real declared metric: test-only declarations would pollute
    # the process-global registry and desync the generated docs.
    import repro.core.edge  # noqa: F401  (declares edge.probes_sent)

    counter = OBS.metrics.get("edge.probes_sent")
    with OBS.capture({"metrics": True}):
        counter.inc(5)
    with OBS.capture({"metrics": True}) as cap:
        pass
    assert cap.export()["metrics"]["edge.probes_sent"]["value"] == 0.0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_registry_declarations_are_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("a", unit="x", site="s", desc="d")
    assert reg.counter("a", unit="x", site="s", desc="d") is a
    with pytest.raises(ValueError):
        reg.counter("a", unit="y", site="s", desc="d")
    with pytest.raises(ValueError):
        reg.gauge("a", unit="x", site="s", desc="d")


def test_event_declarations_are_idempotent():
    reg = MetricsRegistry()
    assert reg.event("ev", fields=("f",), site="s", desc="d") == "ev"
    assert reg.event("ev", fields=("f",), site="s", desc="d") == "ev"
    with pytest.raises(ValueError):
        reg.event("ev", fields=("g",), site="s", desc="d")


def test_series_bounded_with_drop_accounting():
    reg = MetricsRegistry()
    series = reg.series("s", unit="x", site="s", desc="d")
    series.capacity = 4
    for i in range(6):
        series.sample(float(i), float(i), key="k")
    assert len(series.points("k")) == 4
    assert series.dropped["k"] == 2


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------

def test_cache_key_differs_when_tracing_enabled():
    job = _fig11_job()
    traced = dataclasses.replace(job, obs={"trace": True})
    profiled = dataclasses.replace(job, obs={"profile": True})
    keys = {job.config_hash(), traced.config_hash(), profiled.config_hash()}
    assert len(keys) == 3
    assert traced.config_hash() == dataclasses.replace(
        job, obs={"trace": True}).config_hash()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _sample_events():
    return [
        (0.001, "pair.admit", {"pair": "p0", "phi": 2000.0, "n_candidates": 4}),
        (0.002, "link.queue", {"link": "L0", "q_bits": 100.0, "tx_bps": 1e9}),
        (0.003, "pair.rate", {"pair": "p0", "rate_bps": 5e9, "window_bits": 1e5}),
    ]


def test_jsonl_lines_parse_and_carry_job_label():
    lines = trace_to_jsonl_lines(_sample_events(), job="cell")
    assert len(lines) == 3
    for line, (t, kind, _) in zip(lines, _sample_events()):
        record = json.loads(line)
        assert record["t"] == t and record["ev"] == kind and record["job"] == "cell"


def test_chrome_trace_is_valid_and_typed():
    """The export must satisfy the Chrome/Perfetto JSON object format:
    a traceEvents list whose entries carry ph/pid/ts (metadata events
    excepted) with known phase codes."""
    document = json.loads(json.dumps(chrome_trace([("cell", _sample_events())])))
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"
    assert events[0]["ph"] == "M" and events[0]["args"]["name"] == "cell"
    for entry in events:
        assert entry["ph"] in {"M", "i", "C"}
        assert isinstance(entry["pid"], int) and isinstance(entry["tid"], int)
        if entry["ph"] != "M":
            assert isinstance(entry["ts"], float)
    # Queue and rate samples become counter tracks with numeric args.
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in counters} == {"link.queue L0", "pair.rate p0"}
    for entry in counters:
        assert all(isinstance(v, float) for v in entry["args"].values())


def test_write_grid_outputs(tmp_path):
    rows = [
        {"scheme": "ufab", "seed": 1,
         "_obs": {"trace": [list(e) for e in _sample_events()],
                  "trace_dropped": 2,
                  "metrics": {"edge.probes_sent": {"kind": "counter",
                                                   "unit": "probes", "value": 3.0}}}},
        {"scheme": "pwc", "seed": 1},  # untraced sibling: skipped
    ]
    trace = tmp_path / "t.jsonl"
    chrome = tmp_path / "c.json"
    metrics = tmp_path / "m.json"
    summary = write_grid_outputs(rows, trace_path=str(trace),
                                 chrome_path=str(chrome), metrics_path=str(metrics))
    assert summary["cells"] == ["ufab-s1"]
    assert summary["events"] == 3 and summary["dropped"] == 2
    assert len(trace.read_text().splitlines()) == 3
    assert json.loads(chrome.read_text())["traceEvents"]
    assert json.loads(metrics.read_text())["ufab-s1"]["edge.probes_sent"]["value"] == 3.0


# ----------------------------------------------------------------------
# Acceptance: fig11 tracing emits the per-RTT control loop
# ----------------------------------------------------------------------

def test_fig11_trace_contains_rate_and_queue_events():
    traced = execute_job(dataclasses.replace(_fig11_job(), obs={"trace": True}))
    kinds = {kind for _, kind, _ in traced["_obs"]["trace"]}
    assert {"pair.admit", "pair.join", "probe.send", "probe.echo",
            "pair.rate", "link.queue"} <= kinds


def test_profile_capture_reports_engine_rates():
    profiled = execute_job(dataclasses.replace(_fig11_job(), obs={"profile": True}))
    profile = profiled["_obs"]["profile"]
    assert profile["n_sims"] >= 1
    assert profile["events"] > 0
    assert profile["events_per_sec"] is None or profile["events_per_sec"] > 0
    assert profile["max_heap"] > 0


# ----------------------------------------------------------------------
# Documentation generation and link checking
# ----------------------------------------------------------------------

def test_metrics_docs_are_in_sync():
    assert check_docs(os.path.join(REPO_ROOT, "docs", "METRICS.md")) == []


def test_generated_docs_cover_every_declared_name():
    md = generated_markdown()
    for metric in OBS.metrics.metrics():
        assert f"`{metric.name}`" in md
    for event in OBS.metrics.events():
        assert f"`{event.name}`" in md


def test_repo_markdown_links_resolve():
    targets = [os.path.join(REPO_ROOT, "docs"),
               os.path.join(REPO_ROOT, "README.md")]
    assert broken_links(targets) == []


def test_broken_link_detected(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](nope/missing.md) and [ok](bad.md)\n")
    problems = broken_links([str(tmp_path)])
    assert problems == [(str(bad), "nope/missing.md")]


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

def test_cli_fig11_writes_trace_and_metrics(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.json"
    assert main(["fig11", "--duration", "0.004", "--schemes", "ufab",
                 "--no-cache", "--trace", str(trace),
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    lines = [json.loads(line) for line in trace.read_text().splitlines()]
    assert any(record["ev"] == "pair.rate" for record in lines)
    assert json.loads(metrics.read_text())


def test_cli_trace_subcommand(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "trace.jsonl"
    chrome = tmp_path / "chrome.json"
    assert main(["trace", "fig11", "--scheme", "ufab", "--duration", "0.004",
                 "--out", str(out_path), "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "traced fig11" in out
    assert out_path.read_text().splitlines()
    assert json.loads(chrome.read_text())["traceEvents"]


def test_cli_bench_profile_flag(tmp_path, capsys):
    from repro.cli import main

    report_path = tmp_path / "B.json"
    assert main(["bench", "--grid", "smoke", "--no-cache", "--profile",
                 "--out", str(report_path)]) == 0
    assert json.loads(report_path.read_text())["profile"] is True


def test_obs_main_check_and_dump(tmp_path, capsys):
    from repro.obs.__main__ import main as obs_main

    assert obs_main(["--dump-docs"]) == 0
    assert "# Metrics and trace events" in capsys.readouterr().out
    stale = tmp_path / "METRICS.md"
    stale.write_text("stale\n")
    assert obs_main(["--check-docs", str(stale)]) == 1
