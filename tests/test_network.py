"""Unit tests for the Network layer: probe transit, failures, resolves."""

import pytest

from repro.sim.host import VMPair
from repro.sim.network import Network
from repro.sim.topology import Topology, dumbbell, three_tier_testbed


def build(n=2):
    return Network(dumbbell(n_pairs=n))


def test_register_and_rates():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0", phi=100)
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.set_pair_rate("p0", 3e9)
    net.resolve_now()
    assert net.delivered_rate("p0") == pytest.approx(3e9)


def test_duplicate_pair_rejected():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    with pytest.raises(ValueError):
        net.register_pair(pair, path)


def test_demand_caps_send_rate():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0", demand_bps=1e9)
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.set_pair_rate("p0", 8e9)
    net.resolve_now()
    assert net.delivered_rate("p0") == pytest.approx(1e9)


def test_probe_traverses_with_propagation_delay():
    net = build()
    path = net.topology.shortest_paths("src0", "dst0")[0]
    arrivals = []
    net.send_probe(path, payload=None, on_arrive=lambda p, t: arrivals.append(t))
    net.run(1.0)
    expected = sum(l.prop_delay for l in path)
    assert arrivals == [pytest.approx(expected)]


def test_probe_delayed_by_queues():
    net = build()
    path = net.topology.shortest_paths("src0", "dst0")[0]
    # Build a queue on the bottleneck before probing.
    bottleneck = net.topology.link("SW1", "SW2")
    bottleneck.set_inflow(0.0, 20e9)
    net.sim.run(until=1e-3)
    bottleneck.sync(1e-3)
    arrivals = []
    net.send_probe(path, None, on_arrive=lambda p, t: arrivals.append(t))
    net.run(1.0)
    base = sum(l.prop_delay for l in path)
    assert arrivals[0] > 1e-3 + base  # queuing delay included


def test_probe_hop_callbacks_fire_in_path_order():
    net = build()
    path = net.topology.shortest_paths("src0", "dst0")[0]
    seen = []
    net.send_probe(path, "x", on_hop=lambda pl, link, t: seen.append(link.name))
    net.run(1.0)
    assert seen == [l.name for l in path]


def test_probe_dropped_on_failed_link():
    net = build()
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.fail_link("SW1", "SW2")
    dropped = []
    arrived = []
    net.send_probe(path, None,
                   on_arrive=lambda p, t: arrived.append(t),
                   on_drop=lambda p: dropped.append(p))
    net.run(1.0)
    assert arrived == []
    assert len(dropped) == 1 and dropped[0].dropped


def test_fail_and_recover_node():
    net = Network(three_tier_testbed())
    net.fail_node("Core1")
    assert net.topology.link("Agg1", "Core1").failed
    net.recover_node("Core1")
    assert not net.topology.link("Agg1", "Core1").failed


def test_resolve_coalescing():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    before = net.sim.pending()
    net.set_pair_rate("p0", 1e9)
    net.set_pair_rate("p0", 2e9)
    net.set_pair_rate("p0", 3e9)
    # The three updates coalesce into the single already-pending resolve.
    assert net.sim.pending() == before
    net.run(0.001)
    assert net.delivered_rate("p0") == pytest.approx(3e9)


def test_resolve_interval_defers():
    net = build()
    net.resolve_interval = 1e-3
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.run(2e-3)
    net.set_pair_rate("p0", 5e9)
    net.run(2.1e-3)  # under the resolve interval since the last resolve
    # Resolution happens by the interval boundary.
    net.run(4e-3)
    assert net.delivered_rate("p0") == pytest.approx(5e9)


def test_migrate_pair_moves_traffic():
    net = Network(three_tier_testbed())
    paths = net.topology.shortest_paths("S1", "S5")[:2]
    pair = VMPair("p0", "vf0", "S1", "S5")
    net.register_pair(pair, paths[0])
    net.set_pair_rate("p0", 5e9)
    net.resolve_now()
    net.migrate_pair("p0", paths[1])
    net.resolve_now()
    assert paths[1][1].inflow > 0 or paths[1][2].inflow > 0
    assert net.path_of("p0") == tuple(paths[1])


def test_sample_rates_collects_series():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.set_pair_rate("p0", 2e9)
    net.sample_rates(["p0"], period=1e-3, until=0.01)
    net.run(0.01)
    assert len(net.rate_samples["p0"]) >= 9
    assert all(r == pytest.approx(2e9) for _, r in net.rate_samples["p0"][1:])


def test_unregister_pair_removes_flow():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.unregister_pair("p0")
    assert "p0" not in net.pairs
    assert "p0" not in net.hosts["src0"].pairs
    assert pair not in net.hosts["src0"].local_pairs()


def test_unregister_pair_drops_listeners_and_samples():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.on_delivered_rate("p0", lambda rate: None)
    net.sample_rates(["p0"], period=1e-3, until=5e-3)
    net.run(5e-3)
    assert net.rate_samples["p0"]
    net.unregister_pair("p0")
    assert "p0" not in net._rate_listeners
    assert "p0" not in net.rate_samples


def test_sample_rates_grid_is_anchored_to_start():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.set_pair_rate("p0", 2e9)
    start, period, until = 0.5e-3, 1e-3, 10.5e-3
    net.sim.at(start, net.sample_rates, ["p0"], period, until)
    net.run(until)
    times = [t for t, _ in net.rate_samples["p0"]]
    # Exact multiples of the period from the start instant — no float
    # drift from re-scheduling relative to the previous tick.
    assert times == [start + k * period for k in range(len(times))]
    assert times[-1] + period > until


def test_resolve_notifies_only_pairs_whose_rate_moved():
    # Two disconnected islands: p0/p1 share island 0's bottleneck, p2
    # rides island 1.  Rate changes on p0 must not call p2's listener.
    topo = Topology()
    for i in range(2):
        topo.add_node(f"L{i}")
        topo.add_node(f"R{i}")
        topo.add_duplex(f"L{i}", f"R{i}", 10e9)
        for j in range(2):
            topo.add_host(f"s{i}{j}")
            topo.add_host(f"d{i}{j}")
            topo.add_duplex(f"s{i}{j}", f"L{i}", 10e9)
            topo.add_duplex(f"R{i}", f"d{i}{j}", 10e9)
    net = Network(topo)
    routes = {"p0": ("s00", "d00"), "p1": ("s01", "d01"), "p2": ("s10", "d10")}
    for pid, (src, dst) in routes.items():
        net.register_pair(VMPair(pid, "vf0", src, dst),
                          net.topology.shortest_paths(src, dst)[0])
    calls = {pid: [] for pid in routes}
    for pid in routes:
        net.on_delivered_rate(pid, calls[pid].append)
    net.set_pair_rate("p0", 8e9)
    net.set_pair_rate("p1", 8e9)
    net.set_pair_rate("p2", 1e9)
    net.resolve_now()
    first = {pid: len(calls[pid]) for pid in routes}
    assert all(n >= 1 for n in first.values())  # everyone saw the initial rate
    # p2's island is untouched: its listener must stay quiet.
    net.set_pair_rate("p0", 2e9)
    net.resolve_now()
    assert len(calls["p0"]) > first["p0"]
    assert len(calls["p1"]) > first["p1"]  # shares the bottleneck with p0
    assert len(calls["p2"]) == first["p2"]


def test_listener_attached_between_resolves_fires_once():
    net = build()
    pair = VMPair("p0", "vf0", "src0", "dst0")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.register_pair(pair, path)
    net.set_pair_rate("p0", 2e9)
    net.resolve_now()
    seen = []
    net.on_delivered_rate("p0", seen.append)
    net.resolve_now()  # nothing moved, but the new listener must sync
    assert seen == [pytest.approx(2e9)]
