"""Flat probe transit must be bit-identical to per-hop transit.

The fast path (``Network.send_probe`` collapsing a calm path into two
events) is a pure event-count optimization: every experiment payload,
hop record, and trace stream must match the per-hop reference exactly —
not approximately — across schemes, seeds, and fault schedules that
open and close windows mid-flight.  ``REPRO_PROBE_TRANSIT`` selects the
mode; it is read once per :class:`~repro.sim.network.Network`, so each
comparison builds fresh networks under each setting.

Payload comparison is exact ``==`` after stripping ``events_processed``
(the two modes process different event counts by design) and ``_obs``
(compared separately: trace APPEND order differs because the fast path
applies deferred stamps from per-link ledgers, but the multiset of
records with their emission timestamps must be identical).
"""

import json
import os

import pytest

from repro.faults.spec import parse_faults
from repro.runner.job import Job, execute_job
from repro.sim.network import Network
from repro.sim.topology import dumbbell, three_tier_testbed

FIG11 = "repro.experiments.fig11_guarantee:cell"
FIG12 = "repro.experiments.fig12_incast:cell"
RESIL = "repro.experiments.fig_resilience:cell"
TELEM = "repro.experiments.fig_telemetry:cell"

# Fault-spec strings exercising every injector mechanism against the
# fast path: loss/delay interceptor windows, link flaps (turbulence +
# materialization), frozen telemetry, and mid-run restarts/resets.
LOSS = "probe_loss:0.05"
FLAPS = "link_flaps:mtbf=2ms,mttr=0.5ms/Agg"
MIXED = ("probe_loss:0.02@1ms-4ms;probe_delay:20us+10us@2ms-6ms;"
         "link_flaps:mtbf=3ms,mttr=1ms/Agg;stale:1ms@3ms-5ms;"
         "core_reset:Core1@4ms;edge_restart:S1@5ms")


def _run(job, transit):
    """Execute one cell in-process under the given transit mode."""
    old = os.environ.get("REPRO_PROBE_TRANSIT")
    os.environ["REPRO_PROBE_TRANSIT"] = transit
    try:
        return execute_job(job)
    finally:
        if old is None:
            del os.environ["REPRO_PROBE_TRANSIT"]
        else:
            os.environ["REPRO_PROBE_TRANSIT"] = old


def _strip(payload):
    return {k: v for k, v in payload.items()
            if k not in ("events_processed", "_obs")}


def _assert_equivalent(job):
    fast = _run(job, "fast")
    slow = _run(job, "slow")
    assert _strip(fast) == _strip(slow)


# ----------------------------------------------------------------------
# Experiment-level equivalence: 20+ (experiment, seed, faults) cells
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(1, 9))
def test_fig11_ufab_payloads_bit_identical(seed):
    _assert_equivalent(Job(
        "fig11", FIG11, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "duration": 0.006, "seed": seed}))


@pytest.mark.parametrize("seed", range(1, 7))
def test_fig12_payloads_bit_identical(seed):
    _assert_equivalent(Job(
        "fig12", FIG12, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "duration": 0.004, "seed": seed}))


@pytest.mark.parametrize("seed,spec", [
    (1, LOSS), (2, LOSS),
    (1, FLAPS), (2, FLAPS), (3, FLAPS),
    (1, MIXED), (2, MIXED), (3, MIXED),
])
def test_fig_resilience_with_faults_bit_identical(seed, spec):
    dur = 0.008
    faults = parse_faults(spec, horizon=dur, seed=seed).to_config()
    _assert_equivalent(Job(
        "fig_resilience", RESIL, scheme="ufab", seed=seed,
        params={"scheme": "ufab", "axis": "mixed", "level": 1.0,
                "duration": dur, "seed": seed},
        faults=faults))


def test_trace_streams_identical_up_to_append_order():
    # Deferred ledger application reorders trace APPENDS between modes,
    # but each record's timestamp is its emission time — the canonically
    # sorted streams must match record-for-record.
    job = Job("fig11", FIG11, scheme="ufab", seed=3,
              params={"scheme": "ufab", "duration": 0.004, "seed": 3},
              obs={"trace": True, "trace_capacity": 200_000})
    fast = _run(job, "fast")
    slow = _run(job, "slow")
    assert _strip(fast) == _strip(slow)

    def canon(payload):
        records = payload["_obs"]["trace"]
        return sorted(records,
                      key=lambda r: (r[0], r[1], json.dumps(r[2], sort_keys=True)))

    assert canon(fast) == canon(slow)


# ----------------------------------------------------------------------
# Telemetry plans: every stamping policy must be transit-mode invariant
# ----------------------------------------------------------------------
#
# Sampling decisions are pure functions of (seed, pair, seq, link) made
# at launch time; delta state only advances inside the same
# (emission-time, launch-seq)-ordered ledger stamps both modes share;
# sketch folding is header-local.  So every plan — not just ``full`` —
# must produce identical rows under fast and slow transit, and the
# probabilistic plans must be bit-reproducible run over run.

TELEM_PLANS = ("full", "sampled:k=4", "sampled:p=0.5,seed=11",
               "delta:rel=0.1", "sketch")


def _telemetry_job(plan, seed):
    # join_interval compressed so all 12 pairs are active within the
    # short horizon and probes cross contended links in both modes.
    return Job("fig_telemetry", TELEM, scheme="ufab", seed=seed,
               params={"plan": plan, "duration": 0.006,
                       "join_interval": 0.0004, "seed": seed})


def _strip_transit(payload):
    # fastpath_legs is the one row field that *should* differ by mode.
    return {k: v for k, v in _strip(payload).items() if k != "fastpath_legs"}


@pytest.mark.parametrize("plan", TELEM_PLANS)
def test_telemetry_plan_rows_bit_identical_across_transit(plan):
    fast = _run(_telemetry_job(plan, 3), "fast")
    slow = _run(_telemetry_job(plan, 3), "slow")
    assert _strip_transit(fast) == _strip_transit(slow)
    assert slow["fastpath_legs"] == 0


@pytest.mark.parametrize("plan", ("sampled:k=4", "sampled:p=0.5,seed=11",
                                  "delta:rel=0.1"))
@pytest.mark.parametrize("seed", (3, 5))
def test_partial_plans_reproducible_run_over_run(plan, seed):
    first = _run(_telemetry_job(plan, seed), "fast")
    again = _run(_telemetry_job(plan, seed), "fast")
    assert first == again


def test_full_plan_skips_nothing_sampled_plan_does():
    for transit in ("fast", "slow"):
        full = _run(_telemetry_job("full", 3), transit)
        assert full["stamps_skipped"] == 0
        assert full["records_stamped"] > 0
    full = _run(_telemetry_job("full", 3), "fast")
    sampled = _run(_telemetry_job("sampled:k=4", 3), "fast")
    assert sampled["stamps_skipped"] > 0
    assert sampled["records_stamped"] < full["records_stamped"]
    assert sampled["telemetry_bytes"] < full["telemetry_bytes"]
    # The guarantee outcome survives the thinner telemetry.
    assert sampled["compliance"] == pytest.approx(full["compliance"], abs=0.05)


def test_sampled_plans_keep_the_fast_path_engaged():
    # Filtered hops ride the ledger as no-stamp markers (so mid-leg
    # queue buildup still materializes the flight and timing stays
    # exact); the legs themselves still collapse to flat events.
    sampled = _run(_telemetry_job("sampled:k=4", 3), "fast")
    assert sampled["fastpath_legs"] > 0


# ----------------------------------------------------------------------
# Mechanism-level checks against a bare Network
# ----------------------------------------------------------------------

def _net(monkeypatch, transit, topo=None):
    monkeypatch.setenv("REPRO_PROBE_TRANSIT", transit)
    return Network(topo if topo is not None else dumbbell(n_pairs=2))


def test_fast_path_actually_engages(monkeypatch):
    net = _net(monkeypatch, "fast")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    arrivals = []
    for _ in range(4):
        net.send_probe(path, None, on_arrive=lambda p, t: arrivals.append(t))
    net.run(1.0)
    assert len(arrivals) == 4
    assert net.fastpath_legs == 4
    # A flat round trip is 2 events per probe (pre-arrival + arrival)
    # instead of hops+1; with the dumbbell's 3 hops that is visible even
    # on four probes.
    assert net.sim.events_processed < 4 * (len(path) + 1)


def test_slow_mode_env_var_disables_fast_path(monkeypatch):
    net = _net(monkeypatch, "slow")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.send_probe(path, None)
    net.run(1.0)
    assert net.fastpath_legs == 0


def test_pure_hop_stamps_identical_between_modes(monkeypatch):
    runs = {}
    for transit in ("fast", "slow"):
        net = _net(monkeypatch, transit)
        path = net.topology.shortest_paths("src0", "dst0")[0]
        seen = []
        for i in range(3):
            net.send_probe(
                path, {"i": i},
                on_hop=lambda pl, link, t: seen.append((pl["i"], link.name, t)),
                pure_hop=True)
        net.run(1.0)
        runs[transit] = seen
    assert runs["fast"] == runs["slow"]
    # Per-link application order is (emission time, launch seq) in both
    # modes, so the streams match element-for-element, not just as sets.


def test_mid_flight_link_failure_materializes_identically(monkeypatch):
    # Fail the bottleneck while probes are in flight: the fast flights
    # must materialize and drop exactly like the per-hop reference.
    results = {}
    for transit in ("fast", "slow"):
        net = _net(monkeypatch, transit)
        path = net.topology.shortest_paths("src0", "dst0")[0]
        outcome = []
        for i in range(3):
            net.send_probe(
                path, i,
                on_arrive=lambda p, t: outcome.append(("ok", p.payload, t,
                                                       p.hops_taken)),
                on_drop=lambda p: outcome.append(("drop", p.payload,
                                                  p.hops_taken)))
        # Mid-flight: while the probe is still crossing the first hop,
        # before it is emitted onto the bottleneck.
        net.sim.at(path[0].prop_delay * 0.5, net.fail_link, "SW1", "SW2")
        net.run(1.0)
        results[transit] = outcome
    assert results["fast"] == results["slow"]
    assert any(kind == "drop" for kind, *_ in results["fast"])


def test_materialization_counter_increments(monkeypatch):
    net = _net(monkeypatch, "fast")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    net.send_probe(path, None, on_drop=lambda p: None)
    net.sim.at(path[0].prop_delay * 0.5, net.fail_link, "SW1", "SW2")
    net.run(1.0)
    assert net.fastpath_materialized >= 1


def test_probe_and_event_pools_recycle(monkeypatch):
    net = _net(monkeypatch, "fast")
    path = net.topology.shortest_paths("src0", "dst0")[0]
    done = []
    # Sequential waves so earlier probes' objects are back in the pools
    # when later waves launch.
    for wave in range(5):
        net.sim.at(wave * 1e-3, lambda: net.send_probe(
            path, None, on_arrive=lambda p, t: done.append(t)))
    net.run(1.0)
    assert len(done) == 5
    assert net._probe_free, "arrived probes should return to the pool"
    assert net.sim.pool_reuse > 0


def test_three_tier_fault_heavy_micro_equivalence(monkeypatch):
    # Same probe workload on the testbed fat-tree under a link failure
    # plus recovery, both modes, with pure stamps collecting per-hop
    # observations — the full record streams must match.
    results = {}
    for transit in ("fast", "slow"):
        net = _net(monkeypatch, transit, three_tier_testbed())
        paths = net.topology.shortest_paths("S1", "S3")
        stamps = []
        arrivals = []

        def launch():
            for idx, path in enumerate(paths[:2]):
                net.send_probe(
                    path, idx,
                    on_hop=lambda pl, link, t: stamps.append(
                        (pl, link.name, round(t, 12))),
                    on_arrive=lambda p, t: arrivals.append(
                        (p.payload, round(t, 12), p.hops_taken)),
                    on_drop=lambda p: arrivals.append(("drop", p.payload)),
                    pure_hop=True)

        for k in range(10):
            net.sim.at(k * 2e-5, launch)
        net.sim.at(5e-5, net.fail_link, "Agg1", "Core1")
        net.sim.at(1.2e-4, net.recover_link, "Agg1", "Core1")
        net.run(1.0)
        results[transit] = (stamps, arrivals)
    assert results["fast"] == results["slow"]
