"""Tests for optional uFAB-E behaviours: reordering avoidance, lazy
probing, explicit-rate mode, and probe-loss handling."""


import pytest

from repro.core.edge import install_ufab
from repro.core.params import UFabParams
from repro.sim.host import VMPair
from repro.sim.network import Network
from repro.sim.topology import dumbbell, three_tier_testbed


def test_avoid_reordering_delays_data_switch():
    """With the option on, data follows the probe one RTT after a
    migration (section 3.5 'Avoiding reordering')."""
    topo = three_tier_testbed()
    net = Network(topo)
    params = UFabParams(n_candidate_paths=8, avoid_reordering=True)
    fabric = install_ufab(net, params)
    pair = VMPair("p", "vf", "S1", "S5", phi=2000)
    fabric.add_pair(pair)
    net.run(0.02)
    core = next(l.dst for l in net.path_of("p") if l.dst.startswith("Core"))
    old_path = net.path_of("p")
    net.fail_node(core)
    net.run(0.05)
    # The pair migrated and recovered even with the delayed data switch.
    assert net.path_of("p") != old_path
    assert net.delivered_rate("p") > 5e9


def test_lazy_probing_still_converges():
    topo = dumbbell(n_pairs=2)
    net = Network(topo)
    params = UFabParams(probe_period_rtts=3.0)
    fabric = install_ufab(net, params)
    for i, phi in enumerate((1000, 3000)):
        fabric.add_pair(VMPair(f"p{i}", f"vf{i}", f"src{i}", f"dst{i}", phi=phi))
    net.run(0.03)
    r0, r1 = net.delivered_rate("p0"), net.delivered_rate("p1")
    assert r1 / r0 == pytest.approx(3.0, rel=0.15)
    assert r0 + r1 == pytest.approx(9.5e9, rel=0.05)


def test_explicit_rate_only_is_proportional_but_static():
    topo = dumbbell(n_pairs=2)
    net = Network(topo)
    fabric = install_ufab(net, UFabParams(explicit_rate_only=True))
    fabric.add_pair(VMPair("p0", "vf0", "src0", "dst0", phi=1000))
    fabric.add_pair(VMPair("p1", "vf1", "src1", "dst1", phi=3000))
    net.run(0.02)
    r0, r1 = net.delivered_rate("p0"), net.delivered_rate("p1")
    assert r1 / r0 == pytest.approx(3.0, rel=0.1)


def test_probe_loss_brakes_window():
    topo = dumbbell(n_pairs=1)
    net = Network(topo)
    fabric = install_ufab(net, UFabParams())
    pair = VMPair("p0", "vf0", "src0", "dst0", phi=2000)
    fabric.add_pair(pair)
    net.run(0.01)
    controller = fabric.controller("p0")
    window_before = controller.window
    assert window_before > 0
    # Kill the path: probes stop returning, the window halves per loss.
    net.fail_link("SW1", "SW2")
    net.run(0.02)
    assert controller.stats["probe_losses"] >= 1
    assert controller.window < window_before


def test_scout_timeout_marks_candidate_failed():
    topo = three_tier_testbed()
    net = Network(topo)
    fabric = install_ufab(net, UFabParams(n_candidate_paths=8))
    net.fail_node("Core1")  # half the candidates are dead from the start
    pair = VMPair("p", "vf", "S1", "S5", phi=2000)
    fabric.add_pair(pair)
    net.run(0.02)
    controller = fabric.controller("p")
    assert any(controller.book.failed)  # dead candidates detected
    # And the pair still transmits over Core2.
    assert net.delivered_rate("p") > 5e9
    assert not any(
        l.src == "Core1" or l.dst == "Core1" for l in net.path_of("p")
    )


def test_stop_sends_finish_and_zeroes_registers():
    topo = dumbbell(n_pairs=1)
    net = Network(topo)
    fabric = install_ufab(net, UFabParams())
    pair = VMPair("p0", "vf0", "src0", "dst0", phi=2000)
    fabric.add_pair(pair)
    net.run(0.01)
    fabric.remove_pair("p0")
    net.run(0.02)
    assert all(
        l.core_agent.phi_total == 0.0 for l in topo.links.values()
    )
