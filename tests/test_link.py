"""Unit tests for the fluid link model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.link import Link


def make_link(capacity=10e9, **kw):
    return Link("sw1->sw2", "sw1", "sw2", capacity, **kw)


def test_queue_grows_at_excess_rate():
    link = make_link()
    link.set_inflow(0.0, 12e9)  # 2 Gbps excess
    link.sync(1e-3)
    assert link.queue == pytest.approx(2e9 * 1e-3)


def test_queue_drains_when_underloaded():
    link = make_link()
    link.set_inflow(0.0, 12e9)
    link.sync(1e-3)  # 2 Mbit queued
    link.set_inflow(1e-3, 5e9)  # 5 Gbps drain rate
    link.sync(1.2e-3)
    assert link.queue == pytest.approx(2e6 - 5e9 * 0.2e-3)


def test_queue_never_negative():
    link = make_link()
    link.set_inflow(0.0, 1e9)
    link.sync(10.0)
    assert link.queue == 0.0


def test_tx_rate_is_inflow_when_no_queue():
    link = make_link()
    link.set_inflow(0.0, 4e9)
    assert link.tx_rate(1e-3) == pytest.approx(4e9)


def test_tx_rate_is_capacity_when_queued():
    link = make_link()
    link.set_inflow(0.0, 15e9)
    link.sync(1e-3)
    assert link.tx_rate(1e-3) == pytest.approx(10e9)


def test_delay_includes_queueing():
    link = make_link(prop_delay=2e-6)
    link.set_inflow(0.0, 20e9)
    link.sync(1e-3)  # queue = 10 Gbit*ms = 1e7 bits
    expected_queuing = link.queue / 10e9
    assert link.delay(1e-3) == pytest.approx(2e-6 + expected_queuing)


def test_utilization_bounded():
    link = make_link()
    link.set_inflow(0.0, 25e9)
    assert link.utilization(1e-3) == pytest.approx(1.0)
    link.set_inflow(1e-3, 2.5e9)
    link.sync(2.0)  # drain fully
    assert link.utilization(2.0) == pytest.approx(0.25)


def test_finite_queue_drops_excess():
    link = make_link(max_queue=1e6)
    link.set_inflow(0.0, 20e9)
    link.sync(1e-3)  # 10 Mbit excess, 1 Mbit fits
    assert link.queue == pytest.approx(1e6)
    assert link.dropped_bits == pytest.approx(1e7 - 1e6)


def test_peak_queue_tracked():
    link = make_link()
    link.set_inflow(0.0, 20e9)
    link.sync(1e-3)
    peak = link.queue
    link.set_inflow(1e-3, 0.0)
    link.sync(1.0)
    assert link.queue == 0.0
    assert link.peak_queue == pytest.approx(peak)


def test_delivered_bits_accounting():
    link = make_link()
    link.set_inflow(0.0, 5e9)
    link.sync(2e-3)
    assert link.delivered_bits == pytest.approx(5e9 * 2e-3)


def test_sync_is_idempotent_at_same_time():
    link = make_link()
    link.set_inflow(0.0, 12e9)
    link.sync(1e-3)
    q = link.queue
    link.sync(1e-3)
    assert link.queue == q


@given(
    rates=st.lists(st.floats(min_value=0, max_value=50e9), min_size=1, max_size=20),
    step=st.floats(min_value=1e-6, max_value=1e-3),
)
def test_conservation_under_random_inflow_schedule(rates, step):
    """offered = delivered + queued + dropped at all times."""
    link = Link("l", "a", "b", 10e9, max_queue=5e6)
    offered = 0.0
    t = 0.0
    for rate in rates:
        link.set_inflow(t, rate)
        t += step
        link.sync(t)
        offered += rate * step
    total = link.delivered_bits + link.queue + link.dropped_bits
    assert total == pytest.approx(offered, rel=1e-9, abs=1e-3)
    assert link.queue >= 0.0
