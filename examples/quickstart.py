#!/usr/bin/env python3
"""Quickstart: deploy uFAB on the paper's testbed and watch three
tenants share a fabric with guarantees + work conservation.

Run:  python examples/quickstart.py
(Set REPRO_EXAMPLE_DURATION to scale the simulated seconds.)
"""

import os

from repro import Scenario

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.02"))


def main() -> None:
    # 1. Build the Figure-10 testbed (8 servers, 10 switches, 10G links),
    #    install uFAB (edge agents on every host, an informative-core
    #    agent on every switch egress port) and declare three tenants
    #    with 1 / 2 / 5 Gbps minimum guarantees, all crossing the core.
    scenario = (
        Scenario.testbed()
        .scheme("ufab")
        .tenants([("S1", "S5", 1.0), ("S2", "S6", 2.0), ("S3", "S7", 5.0)])
    )

    # 2. Run and read the delivered rates off the typed result.
    result = scenario.run(until=DURATION)
    print(f"After {DURATION * 1e3:.0f} ms, all backlogged:")
    for pair in result.pairs:
        print(f"  {pair.pair_id}: guarantee {pair.phi / 1000:.0f}G "
              f"-> delivered {result.delivered_gbps(pair.pair_id):.2f} Gbps")

    # 3. Work conservation: tenant-2 goes (mostly) idle; the others
    #    absorb its share within a millisecond.  The result keeps the
    #    network and fabric live, so the simulation just continues.
    net, fabric = result.network, result.fabric
    t2 = result.pairs[2].pair_id
    fabric.set_demand(t2, 0.2e9)
    net.run(until=DURATION + 0.002)
    print(f"\n2 ms after {t2} drops to 0.2 Gbps of demand:")
    for pair in result.pairs:
        rate = net.delivered_rate(pair.pair_id)
        print(f"  {pair.pair_id}: delivered {rate / 1e9:.2f} Gbps")

    # 4. And reclaimed just as fast when demand returns.
    fabric.set_demand(t2, float("inf"))
    net.run(until=DURATION + 0.004)
    print(f"\n2 ms after {t2}'s demand returns:")
    for pair in result.pairs:
        rate = net.delivered_rate(pair.pair_id)
        print(f"  {pair.pair_id}: delivered {rate / 1e9:.2f} Gbps")

    queue = max(
        link.queue_bits(net.sim.now) for link in net.topology.links.values()
    )
    print(f"\nLargest queue anywhere in the fabric: {queue / 8e3:.1f} KB")


if __name__ == "__main__":
    main()
