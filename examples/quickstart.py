#!/usr/bin/env python3
"""Quickstart: deploy uFAB on the paper's testbed and watch three
tenants share a fabric with guarantees + work conservation.

Run:  python examples/quickstart.py
"""

from repro import Network, UFabParams, VMPair, install_ufab, three_tier_testbed


def main() -> None:
    # 1. Build the Figure-10 testbed (8 servers, 10 switches, 10G links)
    #    and install uFAB: edge agents on every host, an informative-core
    #    agent on every switch egress port.
    net = Network(three_tier_testbed())
    fabric = install_ufab(net, UFabParams())

    # 2. Three tenants with different minimum guarantees (tokens are
    #    1 Mbps each): 1, 2 and 5 Gbps, all crossing the core.
    tenants = []
    for i, (src, dst, gbps) in enumerate(
        [("S1", "S5", 1.0), ("S2", "S6", 2.0), ("S3", "S7", 5.0)]
    ):
        pair = VMPair(
            pair_id=f"tenant-{i}:{src}->{dst}",
            vf=f"tenant-{i}",
            src_host=src,
            dst_host=dst,
            phi=gbps * 1000,  # tokens
        )
        fabric.add_pair(pair)
        tenants.append(pair)

    # 3. Run 20 simulated milliseconds and read the delivered rates.
    net.run(until=0.02)
    print("After 20 ms, all backlogged:")
    for pair in tenants:
        rate = net.delivered_rate(pair.pair_id)
        print(f"  {pair.pair_id}: guarantee {pair.phi / 1000:.0f}G "
              f"-> delivered {rate / 1e9:.2f} Gbps")

    # 4. Work conservation: tenant-2 goes (mostly) idle; the others
    #    absorb its share within a millisecond.
    fabric.set_demand(tenants[2].pair_id, 0.2e9)
    net.run(until=0.022)
    print("\n2 ms after tenant-2 drops to 0.2 Gbps of demand:")
    for pair in tenants:
        rate = net.delivered_rate(pair.pair_id)
        print(f"  {pair.pair_id}: delivered {rate / 1e9:.2f} Gbps")

    # 5. And reclaimed just as fast when demand returns.
    fabric.set_demand(tenants[2].pair_id, float("inf"))
    net.run(until=0.024)
    print("\n2 ms after tenant-2's demand returns:")
    for pair in tenants:
        rate = net.delivered_rate(pair.pair_id)
        print(f"  {pair.pair_id}: delivered {rate / 1e9:.2f} Gbps")

    queue = max(
        link.queue_bits(net.sim.now) for link in net.topology.links.values()
    )
    print(f"\nLargest queue anywhere in the fabric: {queue / 8e3:.1f} KB")


if __name__ == "__main__":
    main()
