#!/usr/bin/env python3
"""Storage (EBS) scenario: Storage Agents, Block Agents with 3-way
replication, and Garbage Collection sharing one fabric (Figure 14).

Run:  python examples/ebs_storage.py
(Set REPRO_EXAMPLE_DURATION to scale the simulated seconds.)
"""

import os
import random

from repro import Scenario, UFabParams
from repro.analysis import percentile
from repro.workloads.apps import EbsCluster

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.1"))


def run_ebs(scheme: str):
    net, fabric = (
        Scenario.testbed()
        .scheme(scheme, params=UFabParams(n_candidate_paths=8))
        .build(horizon=DURATION)
    )
    cluster = EbsCluster(
        net, fabric,
        sa_hosts=["S1", "S2", "S3", "S4"],
        storage_hosts=["S5", "S6", "S7", "S8"],
        sa_tokens=2000, ba_tokens=6000, gc_tokens=1000,  # 2/6/1 Gbps
        rng=random.Random(23),
    )
    cluster.start(DURATION)
    net.run(DURATION + 0.02)
    return cluster


def main() -> None:
    bound_avg, bound_tail = 2e-3, 10e-3
    print("EBS I/O completion time; bound (converted to 10G): "
          f"{bound_avg * 1e3:.0f} ms avg / {bound_tail * 1e3:.0f} ms tail\n")
    print(f"{'scheme':10s} {'SA avg':>8s} {'BA avg':>8s} {'Total avg':>10s} "
          f"{'Total p99':>10s} {'in bound':>9s}")
    for scheme in ("ufab", "pwc", "es+clove"):
        c = run_ebs(scheme)
        if not (c.sa_tcts and c.ba_tcts and c.total_tcts):
            print(f"{scheme:10s} (no completed I/Os — duration too short)")
            continue
        sa = sum(c.sa_tcts) / len(c.sa_tcts)
        ba = sum(c.ba_tcts) / len(c.ba_tcts)
        total = sum(c.total_tcts) / len(c.total_tcts)
        p99 = percentile(c.total_tcts, 99)
        ok = "yes" if (total <= bound_avg and p99 <= bound_tail) else "NO"
        print(f"{scheme:10s} {sa * 1e3:7.2f}m {ba * 1e3:7.2f}m "
              f"{total * 1e3:9.2f}m {p99 * 1e3:9.2f}m {ok:>9s}")
    print("\nuFAB reconciles the three tasks inside the latency bound via "
          "dynamic guarantee partitioning and subscription-aware paths.")


if __name__ == "__main__":
    main()
