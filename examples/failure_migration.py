#!/usr/bin/env python3
"""Failure handling: a core switch dies mid-run and uFAB migrates the
victim tenants to surviving paths within milliseconds (Figure 15a).

Run:  python examples/failure_migration.py
(Set REPRO_EXAMPLE_DURATION to scale the simulated seconds.)
"""

import os

from repro import Scenario, UFabParams

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.15"))
JOIN_INTERVAL = DURATION / 15  # Figure 15a joins a VF every 10 ms
FAIL_AT = 0.6 * DURATION  # the core dies at 90 ms on the paper's clock


def main() -> None:
    guarantees = (5, 5, 5, 10, 10, 10, 15)  # Gbps, Figure 15a's VF mix
    scenario = (
        Scenario.testbed(link_capacity=100e9)
        .scheme("ufab", params=UFabParams(n_candidate_paths=8))
        .tenants(
            {"src": f"S{i + 1}", "dst": "S8", "gbps": float(g),
             "name": f"VF-{i + 1}", "vf": f"VF-{i + 1}",
             "at": i * JOIN_INTERVAL}
            for i, g in enumerate(guarantees)
        )
    )
    net, fabric = scenario.build(horizon=DURATION)
    names = [f"VF-{i + 1}" for i in range(len(guarantees))]

    failed_core = {}

    def fail_busiest_core() -> None:
        # Fail the core switch currently carrying the most VFs.
        usage = {}
        for name in names:
            if name not in net.pairs:
                continue
            for link in net.path_of(name):
                if link.dst.startswith("Core"):
                    usage[link.dst] = usage.get(link.dst, 0) + 1
        target = max(usage, key=usage.get) if usage else "Core1"
        failed_core["name"] = target
        net.fail_node(target)

    net.sim.at(FAIL_AT, fail_busiest_core)
    net.sample_rates(names, period=1e-3, until=DURATION)
    net.run(DURATION)
    print(f"Failed switch at t={FAIL_AT * 1e3:.0f} ms: "
          f"{failed_core.get('name')}\n")

    before_ms = round((FAIL_AT - 0.005) * 1e3)
    after_ms = round(DURATION * 1e3) - 1
    print(f"VF rates (Gbps) before the failure (t={before_ms} ms) and after "
          f"recovery (t={after_ms} ms):\n")
    print(f"{'VF':8s} {'guarantee':>10s} {'before':>8s} {'after':>9s} "
          f"{'migrations':>11s}")
    for name, g in zip(names, guarantees):
        series = dict(
            (round(t * 1e3), r) for t, r in net.rate_samples[name]
        )
        migrations = fabric.controller(name).stats["migrations"]
        print(f"{name:8s} {g:9.0f}G "
              f"{series.get(before_ms, 0.0) / 1e9:7.1f}G "
              f"{series.get(after_ms, 0.0) / 1e9:8.1f}G {migrations:11d}")
    print("\nVictim VFs crossing the dead core lose bandwidth, detect the "
          "probe loss, and migrate to surviving paths; guarantees recover.")


if __name__ == "__main__":
    main()
