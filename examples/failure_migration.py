#!/usr/bin/env python3
"""Failure handling: a core switch dies mid-run and uFAB migrates the
victim tenants to surviving paths within milliseconds (Figure 15a).

Run:  python examples/failure_migration.py
"""

from repro import Network, UFabParams, VMPair, install_ufab, three_tier_testbed


def main() -> None:
    net = Network(three_tier_testbed(link_capacity=100e9))
    fabric = install_ufab(net, UFabParams(n_candidate_paths=8))

    guarantees = (5, 5, 5, 10, 10, 10, 15)  # Gbps, Figure 15a's VF mix
    pairs = []
    for i, g in enumerate(guarantees):
        pair = VMPair(f"VF-{i + 1}", f"VF-{i + 1}", f"S{i + 1}", "S8",
                      phi=g * 1000)
        net.sim.at(i * 0.01, fabric.add_pair, pair)  # join every 10 ms
        pairs.append(pair)

    failed_core = {}

    def fail_busiest_core() -> None:
        # Fail the core switch currently carrying the most VFs.
        usage = {}
        for pair in pairs:
            if pair.pair_id not in net.pairs:
                continue
            for link in net.path_of(pair.pair_id):
                if link.dst.startswith("Core"):
                    usage[link.dst] = usage.get(link.dst, 0) + 1
        target = max(usage, key=usage.get) if usage else "Core1"
        failed_core["name"] = target
        net.fail_node(target)

    net.sim.at(0.09, fail_busiest_core)  # a core dies at 90 ms
    net.sample_rates([p.pair_id for p in pairs], period=1e-3, until=0.15)
    net.run(0.15)
    print(f"Failed switch at t=90 ms: {failed_core.get('name')}\n")

    print("VF rates (Gbps) before the failure (t=85 ms) and after "
          "recovery (t=149 ms):\n")
    print(f"{'VF':8s} {'guarantee':>10s} {'t=85ms':>8s} {'t=149ms':>9s} "
          f"{'migrations':>11s}")
    for pair in pairs:
        series = dict(
            (round(t * 1e3), r) for t, r in net.rate_samples[pair.pair_id]
        )
        migrations = fabric.controller(pair.pair_id).stats["migrations"]
        print(f"{pair.pair_id:8s} {pair.phi / 1000:9.0f}G "
              f"{series.get(85, 0.0) / 1e9:7.1f}G "
              f"{series.get(149, 0.0) / 1e9:8.1f}G {migrations:11d}")
    print("\nVictim VFs crossing Core1 lose bandwidth at t=90 ms, detect the "
          "probe loss, and migrate to Core2 paths; guarantees recover.")


if __name__ == "__main__":
    main()
