#!/usr/bin/env python3
"""Compute (ECS) scenario: a latency-sensitive Memcached tenant sharing
the fabric with a bandwidth-hungry MongoDB tenant (Figure 13).

Run:  python examples/ecs_tenants.py
(Set REPRO_EXAMPLE_DURATION to scale the simulated seconds.)
"""

import os
import random

from repro import Scenario, UFabParams
from repro.analysis import percentile
from repro.workloads import EmpiricalSize, KEY_VALUE_CDF
from repro.workloads.apps import BulkFetchApp, RequestResponseApp

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.08"))
WARMUP = DURATION / 4


def run_scenario(scheme: str, with_background: bool = True):
    net, fabric = (
        Scenario.testbed()
        .scheme(scheme, params=UFabParams(n_candidate_paths=8))
        .build(horizon=DURATION)
    )

    memcached = RequestResponseApp(
        net, fabric, vf="memcached",
        servers=["S7", "S8"], clients=["S1", "S2", "S3", "S4"],
        tokens_per_pair=4000 / 8,
        response_size=EmpiricalSize(KEY_VALUE_CDF),
        period_s=50e-6, max_outstanding=8, rng=random.Random(7),
    )
    if with_background:
        BulkFetchApp(
            net, fabric, vf="mongodb",
            servers=["S5", "S6", "S7", "S8"], clients=["S1", "S2", "S3", "S4"],
            tokens_per_pair=4000 / 16, block_bytes=500_000,
            rng=random.Random(8),
        ).start()

    memcached.start(DURATION)
    net.run(DURATION)
    qcts = [q for t, q in memcached.completions if t >= WARMUP]
    return memcached.qps((WARMUP, DURATION)), qcts


def main() -> None:
    print("Memcached under MongoDB background traffic (high load)\n")
    print(f"{'scheme':12s} {'QPS':>8s} {'QCT avg':>9s} {'QCT p99':>9s}")
    for label, scheme, background in (
        ("ideal", "ufab", False),
        ("ufab", "ufab", True),
        ("pwc", "pwc", True),
        ("es+clove", "es+clove", True),
    ):
        qps, qcts = run_scenario(scheme, background)
        if not qcts:
            print(f"{label:12s} {qps:8.0f} (no completed queries — "
                  "duration too short)")
            continue
        print(f"{label:12s} {qps:8.0f} {sum(qcts) / len(qcts) * 1e6:8.0f}u "
              f"{percentile(qcts, 99) * 1e6:8.0f}u")
    print("\nuFAB isolates the latency-sensitive tenant: its QCT stays "
          "close to the ideal (no-background) run.")


if __name__ == "__main__":
    main()
