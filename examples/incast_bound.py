#!/usr/bin/env python3
"""Bounded tail latency under incast (the paper's Case-1 / Figure 12).

Launches an N-to-1 incast under uFAB and under PicNIC'+WCC+Clove and
compares the RTT distribution against uFAB's analytic 4-baseRTT bound.

Run:  python examples/incast_bound.py [N]
(Set REPRO_EXAMPLE_DURATION to scale the simulated seconds.)
"""

import os
import sys

from repro import Scenario
from repro.analysis import RttSampler, percentile

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "0.03"))


def run_incast(scheme: str, degree: int, duration: float = DURATION):
    scenario = Scenario.testbed().scheme(scheme).tenants(
        {"src": f"S{1 + i % 7}", "dst": "S8", "gbps": 0.5,
         "name": f"flow-{i}", "vf": f"vf-{i}"}
        for i in range(degree)
    )
    net, _fabric = scenario.build(horizon=duration)
    sampler = RttSampler(net, [f"flow-{i}" for i in range(degree)], period=6e-6)
    sampler.start(duration)
    net.run(duration)
    return sampler.rtts.samples


def main() -> None:
    degree = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    base_rtt = 24e-6
    bound = 4 * base_rtt
    print(f"{degree}-to-1 incast on the 10G testbed "
          f"(baseRTT {base_rtt * 1e6:.0f} us, uFAB bound {bound * 1e6:.0f} us)\n")
    print(f"{'scheme':22s} {'p50':>8s} {'p99':>8s} {'p99.9':>8s} {'max':>8s}")
    for scheme in ("pwc", "ufab-prime", "ufab"):
        samples = run_incast(scheme, degree)
        if not samples:
            print(f"{scheme:22s} (no samples — duration too short)")
            continue
        row = [percentile(samples, p) * 1e6 for p in (50, 99, 99.9)]
        row.append(max(samples) * 1e6)
        print(f"{scheme:22s} " + " ".join(f"{v:7.0f}u" for v in row))
    print("\nuFAB keeps the tail near the bound; dropping the two-stage "
          "admission (ufab-prime) or using PWC loses it.")


if __name__ == "__main__":
    main()
